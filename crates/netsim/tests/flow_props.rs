//! Property tests for the incremental max-min engine: on every event of
//! random arrival/completion/fault sequences, the materialised rates
//! must match the reference global `maxmin_rates` re-solve within 1e-9
//! relative (`FlowConfig::verify` asserts this inside the engine), and
//! the observable outcomes must not depend on solver mode or short-flow
//! aggregation.

use des::rng::Rng;
use des::time::SimTime;
use nren_netsim::{
    fat_tree, topologies, workload, FlowConfig, FlowOutcome, FlowSim, LinkClass, LinkFault,
    SolverMode, TransferSpec,
};

fn random_faults(rng: &mut Rng, links: usize, n: usize, horizon_s: f64) -> Vec<LinkFault> {
    (0..n)
        .map(|_| {
            let down = rng.exp(1.0) * horizon_s / 4.0;
            let dur = rng.exp(1.0) * horizon_s / 8.0 + 0.5;
            LinkFault {
                link: rng.below(links as u64) as usize,
                down_at: SimTime::from_secs_f64(down),
                up_at: SimTime::from_secs_f64(down + dur),
            }
        })
        .collect()
}

/// The verify hook re-derives the allocation with the reference solver
/// after every resolve and panics on divergence — running to completion
/// IS the property.
#[test]
fn incremental_equals_reference_on_random_sequences() {
    let net = topologies::nsfnet(LinkClass::T3);
    for seed in 0..8u64 {
        let mut rng = Rng::new(seed);
        let specs = workload::poisson_traffic(&net, &mut rng, 4.0, 2e6, 20.0);
        let faults = random_faults(&mut rng, net.links().len(), 3, 20.0);
        let cfg = FlowConfig {
            solver: SolverMode::Incremental { full_fraction: 0.5 },
            aggregate_below: 0,
            verify: true,
        };
        let sim = FlowSim::with_config(&net, cfg);
        let (outcomes, stats) = sim.run_with_faults(specs.clone(), &faults).unwrap();
        assert_eq!(outcomes.len(), specs.len());
        assert!(stats.solver.resolves > 0);
        // The affected sets must actually be subsets most of the time,
        // or the incremental path is a fiction.
        assert!(
            stats.solver.full_resolves < stats.solver.resolves,
            "seed {seed}: every resolve fell back to full"
        );
    }
}

#[test]
fn incremental_equals_reference_with_aggregation_and_windows() {
    let net = topologies::nsfnet(LinkClass::T1);
    for seed in 20..26u64 {
        let mut rng = Rng::new(seed);
        let mut specs = workload::poisson_traffic(&net, &mut rng, 6.0, 5e5, 10.0);
        // Window-cap a third of them so capped and uncapped flows mix.
        for (i, s) in specs.iter_mut().enumerate() {
            if i % 3 == 0 {
                s.window = Some(64 * 1024);
            }
        }
        let faults = random_faults(&mut rng, net.links().len(), 2, 10.0);
        let cfg = FlowConfig {
            solver: SolverMode::Incremental { full_fraction: 0.5 },
            aggregate_below: 1 << 20,
            verify: true,
        };
        let sim = FlowSim::with_config(&net, cfg);
        let (outcomes, stats) = sim.run_with_faults(specs, &faults).unwrap();
        assert!(!outcomes.is_empty());
        assert!(stats.solver.aggregated_joins > 0, "seed {seed}: no joins");
    }
}

fn finish_times(outcomes: &[FlowOutcome]) -> Vec<(bool, f64)> {
    outcomes
        .iter()
        .map(|o| match o {
            FlowOutcome::Completed(r) => (true, r.finished.as_secs_f64()),
            FlowOutcome::Stalled { stalled_at, .. } => (false, stalled_at.as_secs_f64()),
        })
        .collect()
}

/// Solver mode is an implementation detail: Global (full re-solve every
/// event) and Incremental must produce the same schedule up to float
/// residue (sub-microsecond on multi-second transfers).
#[test]
fn global_and_incremental_modes_agree() {
    let net = topologies::nsfnet(LinkClass::T3);
    for seed in 40..46u64 {
        let mut rng = Rng::new(seed);
        let specs = workload::poisson_traffic(&net, &mut rng, 5.0, 2e6, 15.0);
        let faults = random_faults(&mut rng, net.links().len(), 2, 15.0);
        let run = |solver| {
            let cfg = FlowConfig {
                solver,
                aggregate_below: 0,
                verify: false,
            };
            FlowSim::with_config(&net, cfg)
                .run_with_faults(specs.clone(), &faults)
                .unwrap()
        };
        let (ginc, _) = run(SolverMode::Incremental {
            full_fraction: 0.25,
        });
        let (gfull, _) = run(SolverMode::Global);
        for (i, (a, b)) in finish_times(&ginc)
            .iter()
            .zip(finish_times(&gfull))
            .enumerate()
        {
            assert_eq!(a.0, b.0, "seed {seed} flow {i}: outcome kind diverged");
            assert!(
                (a.1 - b.1).abs() < 1e-6,
                "seed {seed} flow {i}: {} vs {}",
                a.1,
                b.1
            );
        }
    }
}

/// Aggregation collapses same-route short flows into weighted entries;
/// the weighted fill must hand every member exactly what it would get
/// as a standalone flow.
#[test]
fn aggregation_preserves_the_schedule() {
    let net = topologies::nsfnet(LinkClass::T1);
    for seed in 60..66u64 {
        let mut rng = Rng::new(seed);
        let specs = workload::poisson_traffic(&net, &mut rng, 8.0, 3e5, 10.0);
        let run = |aggregate_below| {
            let cfg = FlowConfig {
                solver: SolverMode::Incremental {
                    full_fraction: 0.25,
                },
                aggregate_below,
                verify: false,
            };
            FlowSim::with_config(&net, cfg).run(specs.clone())
        };
        let plain = run(0);
        let agg = run(1 << 22);
        for (i, (a, b)) in plain.iter().zip(&agg).enumerate() {
            assert_eq!(a.started, b.started, "seed {seed} flow {i}");
            let (ta, tb) = (a.finished.as_secs_f64(), b.finished.as_secs_f64());
            assert!((ta - tb).abs() < 1e-6, "seed {seed} flow {i}: {ta} vs {tb}");
        }
    }
}

/// Zero-fault runs and empty-fault-schedule runs stay bit-identical
/// (same engine, same event order) even at fabric scale.
#[test]
fn fabric_runs_are_replayable_bit_for_bit() {
    let fab = fat_tree(4, LinkClass::Gigabit, LinkClass::Gig100, "t.");
    let mut rng = Rng::new(9);
    let specs = workload::fan_out_traffic(&fab.hosts, 4, &mut rng, 400, 1e6, SimTime::ZERO);
    let cfg = FlowConfig {
        solver: SolverMode::Incremental {
            full_fraction: 0.25,
        },
        aggregate_below: 1 << 20,
        verify: true,
    };
    let run = || {
        FlowSim::with_config(&fab.net, cfg)
            .run_with_faults(specs.clone(), &[])
            .unwrap()
    };
    let (oa, sa) = run();
    let (ob, sb) = run();
    assert_eq!(sa.makespan, sb.makespan);
    assert_eq!(sa.carried, sb.carried);
    for (x, y) in oa.iter().zip(&ob) {
        let (p, q) = (x.completed().unwrap(), y.completed().unwrap());
        assert_eq!(p.started, q.started);
        assert_eq!(p.finished, q.finished);
    }
}

/// A many-senders blast into one sink saturates the sink's host link;
/// every flow must converge to an equal share of it (max-min fairness
/// end to end through the incremental path).
#[test]
fn fan_in_converges_to_equal_shares() {
    let fab = fat_tree(4, LinkClass::Gigabit, LinkClass::Gig100, "t.");
    let sink = *fab.hosts.last().unwrap();
    let specs: Vec<TransferSpec> = fab.hosts[..8]
        .iter()
        .map(|&h| TransferSpec::new(h, sink, 100 << 20, SimTime::ZERO))
        .collect();
    let cfg = FlowConfig {
        verify: true,
        ..FlowConfig::default()
    };
    let recs = FlowSim::with_config(&fab.net, cfg).run(specs);
    let cap = LinkClass::Gigabit.bytes_per_sec();
    let expect = 8.0 * (100 << 20) as f64 / cap;
    for r in &recs {
        let d = r.duration().as_secs_f64();
        assert!(
            (d - expect).abs() / expect < 0.01,
            "got {d}, want ~{expect}"
        );
    }
}
