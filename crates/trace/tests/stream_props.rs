//! Property and concurrency tests for the streaming recorder.
//!
//! * Quantile fidelity: `StreamRecorder`'s online p50/p90/p99 against the
//!   exact quantile computed from a `MemRecorder` fed the same events —
//!   equal to the enclosing bucket's upper edge and within the 12.5%
//!   log-linear bucket resolution.
//! * Accounting: every emitted event is aggregated exactly once and is in
//!   the ring exactly once (retained, active, or counted as evicted).
//! * Scrape-while-write: concurrent readers see monotone totals and
//!   internally consistent snapshots while the writer is hot.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hpcc_trace::stream::{bucket_hi, bucket_of};
use hpcc_trace::{Event, MemRecorder, Recorder, StreamRecorder};

/// Exact quantile with `des::stats::Histogram`'s rank rule: the
/// `ceil(q*n)`-th smallest value (1-indexed).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = (q * sorted.len() as f64).ceil() as usize;
    sorted[target.max(1) - 1]
}

/// Durations spanning the full dynamic range: mantissa scaled into an
/// exponent sampled from `0..=max_exp`.
fn durations(seed: &mut impl FnMut() -> u64, n: usize, max_exp: u32) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let exp = seed() % (max_exp as u64 + 1);
            let mantissa = seed() % 1000;
            (1u64 << exp).saturating_add(mantissa * (1u64 << exp) / 1000)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streamed quantile is the upper edge of the bucket holding the
    /// exact quantile (MemRecorder ground truth), hence within one
    /// log-linear bucket — ≤12.5% relative error.
    #[test]
    fn stream_quantiles_match_mem_recorder_within_bucket_resolution(
        n in 1usize..400,
        max_exp in 0u32..50,
        salt in 0u64..u64::MAX - 1,
    ) {
        let mut state = salt | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let durs = durations(&mut next, n, max_exp);

        let stream = StreamRecorder::new();
        let mem = MemRecorder::new();
        let ts = stream.track("mesh nodes", "node 0");
        let tm = mem.track("mesh nodes", "node 0");
        for &d in &durs {
            stream.span(ts, "compute", "k", 0, d);
            mem.span(tm, "compute", "k", 0, d);
        }

        // Ground truth from the buffered recorder's own event log.
        let mut sorted: Vec<u64> = mem.with(|_, events| {
            events
                .iter()
                .map(|e| match e {
                    Event::Span { start_ns, end_ns, .. } => end_ns - start_ns,
                    _ => unreachable!("only spans were emitted"),
                })
                .collect()
        });
        sorted.sort_unstable();
        prop_assert_eq!(sorted.len(), durs.len());

        let snap = stream.metrics_snapshot();
        prop_assert_eq!(snap.spans.len(), 1);
        let g = &snap.spans[0];
        prop_assert_eq!(g.count, n as u64);
        prop_assert_eq!(g.min_ns, *sorted.first().unwrap());
        prop_assert_eq!(g.max_ns, *sorted.last().unwrap());

        for (q, got) in [(0.5, g.p50_ns), (0.9, g.p90_ns), (0.99, g.p99_ns)] {
            let exact = exact_quantile(&sorted, q);
            prop_assert_eq!(
                got,
                bucket_hi(bucket_of(exact)),
                "q={} exact={} got={}", q, exact, got
            );
            // Bucket resolution: upper edge overshoots by <= 12.5% + 1.
            prop_assert!(got >= exact);
            prop_assert!(
                (got - exact) as f64 <= 0.125 * exact as f64 + 1.0,
                "q={} exact={} got={} overshoots a bucket", q, exact, got
            );
        }
    }

    /// Ledger identities hold for any mix of event kinds and any ring
    /// geometry, with eviction forced by tiny rings.
    #[test]
    fn ledger_balances_for_any_mix_and_ring_geometry(
        spans in 0u64..300,
        counters in 0u64..300,
        instants in 0u64..300,
        chunk_cap in 1usize..33,
        max_chunks in 1usize..5,
    ) {
        let rec = StreamRecorder::with_ring(chunk_cap, max_chunks);
        let t = rec.track("p", "t");
        for i in 0..spans {
            rec.span(t, "c", "s", i, i + 1);
        }
        for i in 0..counters {
            rec.counter(t, "q", i, i as f64);
        }
        for i in 0..instants {
            rec.instant(t, "f", "x", i);
        }
        let snap = rec.metrics_snapshot();
        let total = spans + counters + instants;
        prop_assert_eq!(snap.events_total, total);
        // Aggregation ledger: every event aggregated exactly once.
        prop_assert_eq!(
            snap.spans_total + snap.counters_total + snap.instants_total,
            total
        );
        // Ring ledger: emitted == retained + active + evicted (dropped).
        prop_assert_eq!(
            snap.ring.retained_events + snap.ring.active_events + snap.ring.evicted_events,
            total
        );
        // Sequence window is consistent with the ledger.
        prop_assert_eq!(snap.ring.next_seq, total);
        prop_assert_eq!(snap.ring.oldest_seq, snap.ring.evicted_events);
        // A ring this small under this load must have dropped something.
        if total > (chunk_cap * (max_chunks + 1)) as u64 {
            prop_assert!(snap.ring.evicted_events > 0);
        }
    }
}

/// Concurrent scrape-while-write: readers hammer every read surface while
/// a writer streams events. Totals must be monotone across scrapes and
/// the final ledger exact.
#[test]
fn concurrent_scrapes_see_monotone_consistent_state() {
    const N: u64 = 30_000;
    let rec = Arc::new(StreamRecorder::with_ring(256, 8));
    let t = rec.track("mesh nodes", "node 0");
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let rec = Arc::clone(&rec);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for i in 0..N {
                    match i % 3 {
                        0 => rec.span(t, "compute", "k", i, i + 10),
                        1 => rec.counter(t, "q", i, i as f64),
                        _ => rec.instant(t, "f", "x", i),
                    }
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        for _ in 0..3 {
            let rec = Arc::clone(&rec);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_total = 0u64;
                let mut cursor = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let snap = rec.metrics_snapshot();
                    assert!(
                        snap.events_total >= last_total,
                        "events_total regressed: {} -> {}",
                        last_total,
                        snap.events_total
                    );
                    last_total = snap.events_total;
                    // Prometheus text renders without panicking mid-write.
                    let text = rec.prometheus_text();
                    assert!(text.contains("hpcc_recorder_events_total"));
                    // Trace cursor only moves forward.
                    let (_, next) = rec.trace_chunk(cursor, 1024);
                    assert!(next >= cursor);
                    cursor = next;
                }
            });
        }
    });

    let snap = rec.metrics_snapshot();
    assert_eq!(snap.events_total, N);
    assert_eq!(
        snap.spans_total + snap.counters_total + snap.instants_total,
        N
    );
    assert_eq!(
        snap.ring.retained_events + snap.ring.active_events + snap.ring.evicted_events,
        N
    );
}

/// The pure-observer contract at the API level: a recorded lu2d-style
/// span stream leaves the recorder with exactly the aggregates the inputs
/// dictate, independent of scrape interleavings (scrapes are read-only).
#[test]
fn scrapes_do_not_perturb_aggregates() {
    let rec = StreamRecorder::new();
    let t = rec.track("p", "t");
    rec.span(t, "c", "a", 0, 100);
    let before = rec.metrics_snapshot();
    for _ in 0..50 {
        let _ = rec.prometheus_text();
        let _ = rec.trace_chunk(0, 10_000);
        let _ = rec.metrics_snapshot();
    }
    rec.span(t, "c", "a", 0, 100);
    let after = rec.metrics_snapshot();
    assert_eq!(after.spans[0].count, before.spans[0].count + 1);
    assert_eq!(after.spans[0].sum_ns, before.spans[0].sum_ns + 100);
    assert_eq!(after.events_total, before.events_total + 1);
}
