//! `StreamRecorder` — online, thread-safe aggregation for live telemetry.
//!
//! [`crate::MemRecorder`] buffers every event and exports post-hoc, which
//! cannot serve concurrent dashboard readers against a hot simulation: the
//! buffer grows without bound and a reader would have to copy all of it.
//! `StreamRecorder` instead aggregates *online* and keeps only a bounded
//! tail of raw events:
//!
//! * **Span cells** — one per (track, category): a log-linear histogram of
//!   span durations held in plain `AtomicU64` bucket counters, plus
//!   count/sum/min/max. The writer does a handful of relaxed `fetch_add`s
//!   per span; readers load the counters without ever stopping the writer.
//!   At scrape time the cells of one (process, category) group are
//!   materialized as [`des::stats::Histogram`]s over bucket-index space
//!   (via `Histogram::from_counts`) and combined with
//!   `Histogram::try_merge` — same geometry by construction, and the typed
//!   [`des::stats::GeometryMismatch`] error surfaces any drift instead of
//!   silently misfiling counts.
//! * **Counter cells** — one per (track, name): last sampled value (bit
//!   cast through `AtomicU64`), sample count, running min/max.
//! * **Instant cells** — one per (track, category, name): occurrence count.
//! * **Event ring** — a bounded deque of immutable chunks of recent events
//!   for live trace tailing (`/trace?since=<seq>`). The writer appends to
//!   an active chunk and publishes it when full; readers only ever touch
//!   published (frozen) chunks, so a slow reader can never block or
//!   corrupt the simulation thread. When the deque is full the oldest
//!   chunk is *evicted* and its events counted in
//!   [`RingLedger::evicted_events`] — drops are counted, never silent.
//!
//! ## Perturbation budget
//!
//! The writer-side cost per event is: one `RwLock` read lock (uncontended
//! CAS), a ≤8-entry linear cell probe, 3–5 relaxed atomic RMWs, and one
//! uncontended `Mutex` push into the active ring chunk. There are no
//! allocations on the hot path (ring names are inlined up to
//! [`SmallName::CAP`] bytes, then truncated) and readers never hold a lock
//! the writer's fast path needs: scrapes read atomics and clone `Arc`s of
//! frozen chunks. Like every recorder, it is a pure observer — recorded
//! runs stay bit-identical to unrecorded ones (asserted in exhibit OBS-2).
//!
//! ## Accounting ledger
//!
//! Every emitted event is aggregated exactly once and lands in the ring
//! exactly once; nothing is silently lost:
//!
//! ```text
//! events_total == spans + counters + instants          (aggregation)
//! events_total == retained + evicted + active          (ring)
//! ```
//!
//! Both identities are exposed on `/metrics` and property-tested.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use des::stats::Histogram;

use crate::{Recorder, Track, TrackId};

/// Sub-buckets per power of two in the log-linear histogram.
const MINOR_BITS: u32 = 3;
const MINORS: usize = 1 << MINOR_BITS;
/// Total buckets: values `0..MINORS` get exact buckets, then every power
/// of two from `2^MINOR_BITS` to `2^63` gets `MINORS` linear sub-buckets
/// (61 majors × `MINORS` minors after the exact range).
/// Covers all of `u64` — a duration can neither under- nor overflow.
pub const NBUCKETS: usize = (64 - MINOR_BITS as usize + 1) * MINORS;

/// Bucket index for a nanosecond duration. Monotone in `v`; relative
/// bucket width is at most `1/MINORS` (12.5%), the quantile resolution.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < MINORS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros();
    let shift = top - MINOR_BITS;
    let minor = ((v >> shift) & (MINORS as u64 - 1)) as usize;
    ((top - MINOR_BITS) as usize + 1) * MINORS + minor
}

/// Inclusive upper bound of bucket `i` — the value reported for a
/// quantile landing in it (mirrors `Histogram::quantile` returning the
/// bucket's upper edge). Saturates at `u64::MAX` for the last bucket.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i < MINORS {
        return i as u64;
    }
    let major = i / MINORS - 1;
    let minor = i % MINORS;
    let hi = ((MINORS + minor + 1) as u128) << major;
    (hi - 1).min(u64::MAX as u128) as u64
}

/// Inline string for ring events: the hot path must not allocate. Longer
/// names are truncated at a char boundary — the aggregation cells (which
/// key on category, not name) are unaffected.
#[derive(Clone, Copy)]
pub struct SmallName {
    len: u8,
    bytes: [u8; SmallName::CAP],
}

impl SmallName {
    pub const CAP: usize = 31;

    pub fn new(s: &str) -> SmallName {
        let mut end = s.len().min(Self::CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; Self::CAP];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallName {
            len: end as u8,
            bytes,
        }
    }

    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("truncated on char boundary")
    }
}

impl std::fmt::Debug for SmallName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_str().fmt(f)
    }
}

/// One recent event in the ring, fixed-size (no heap).
#[derive(Debug, Clone, Copy)]
pub struct RingEvent {
    pub track: TrackId,
    pub cat: &'static str,
    pub name: SmallName,
    pub kind: RingKind,
}

#[derive(Debug, Clone, Copy)]
pub enum RingKind {
    Span { start_ns: u64, end_ns: u64 },
    Instant { at_ns: u64 },
    Counter { at_ns: u64, value: f64 },
}

/// A frozen, published run of consecutive events. `base_seq` is the
/// global sequence number of `events[0]`.
pub struct Chunk {
    pub base_seq: u64,
    pub events: Vec<RingEvent>,
}

struct RingActive {
    base_seq: u64,
    events: Vec<RingEvent>,
}

struct Ring {
    /// Writer-side buffer; readers never lock it.
    active: Mutex<RingActive>,
    /// Frozen chunks, oldest first. Readers clone `Arc`s out under a
    /// briefly-held lock; the writer locks it once per `chunk_cap`
    /// events to publish.
    published: Mutex<VecDeque<Arc<Chunk>>>,
    chunk_cap: usize,
    max_chunks: usize,
    evicted: AtomicU64,
    /// Sequence number of the oldest event still retained (first
    /// published chunk, or the active chunk when none are published).
    oldest: AtomicU64,
}

/// Ring accounting snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLedger {
    /// Events currently in published (reader-visible) chunks.
    pub retained_events: u64,
    /// Events in the writer's active (not yet visible) chunk.
    pub active_events: u64,
    /// Events lost to eviction of the oldest chunk — the drop counter.
    pub evicted_events: u64,
    /// Next sequence number to be assigned (== total events ever rung).
    pub next_seq: u64,
    /// Oldest retained sequence number.
    pub oldest_seq: u64,
}

impl Ring {
    fn new(chunk_cap: usize, max_chunks: usize) -> Ring {
        Ring {
            active: Mutex::new(RingActive {
                base_seq: 0,
                events: Vec::with_capacity(chunk_cap),
            }),
            published: Mutex::new(VecDeque::with_capacity(max_chunks + 1)),
            chunk_cap,
            max_chunks,
            evicted: AtomicU64::new(0),
            oldest: AtomicU64::new(0),
        }
    }

    fn push(&self, ev: RingEvent) {
        let mut active = self.active.lock().expect("ring active");
        active.events.push(ev);
        if active.events.len() >= self.chunk_cap {
            let full = std::mem::replace(&mut active.events, Vec::with_capacity(self.chunk_cap));
            let chunk = Arc::new(Chunk {
                base_seq: active.base_seq,
                events: full,
            });
            active.base_seq += self.chunk_cap as u64;
            drop(active);
            self.publish(chunk);
        }
    }

    /// Publish the active chunk even if partially full (phase boundaries,
    /// end of run) so tail readers see everything emitted so far.
    fn flush(&self) {
        let mut active = self.active.lock().expect("ring active");
        if active.events.is_empty() {
            return;
        }
        let n = active.events.len();
        let part = std::mem::replace(&mut active.events, Vec::with_capacity(self.chunk_cap));
        let chunk = Arc::new(Chunk {
            base_seq: active.base_seq,
            events: part,
        });
        active.base_seq += n as u64;
        drop(active);
        self.publish(chunk);
    }

    fn publish(&self, chunk: Arc<Chunk>) {
        let mut pubs = self.published.lock().expect("ring published");
        pubs.push_back(chunk);
        while pubs.len() > self.max_chunks {
            let gone = pubs.pop_front().expect("nonempty");
            self.evicted
                .fetch_add(gone.events.len() as u64, Ordering::Relaxed);
            self.oldest
                .store(gone.base_seq + gone.events.len() as u64, Ordering::Relaxed);
        }
    }

    /// Snapshot the published chunks overlapping `since..`.
    fn read_since(&self, since: u64) -> Vec<Arc<Chunk>> {
        let pubs = self.published.lock().expect("ring published");
        pubs.iter()
            .filter(|c| c.base_seq + c.events.len() as u64 > since)
            .cloned()
            .collect()
    }

    fn ledger(&self) -> RingLedger {
        // Lock order: active then published — same as the writer's
        // publish path, so a concurrent snapshot cannot deadlock and the
        // two counts come from one consistent cut.
        let active = self.active.lock().expect("ring active");
        let pubs = self.published.lock().expect("ring published");
        let retained: u64 = pubs.iter().map(|c| c.events.len() as u64).sum();
        RingLedger {
            retained_events: retained,
            active_events: active.events.len() as u64,
            evicted_events: self.evicted.load(Ordering::Relaxed),
            next_seq: active.base_seq + active.events.len() as u64,
            oldest_seq: self.oldest.load(Ordering::Relaxed),
        }
    }
}

/// Online histogram + scalar moments for one (track, category).
struct SpanCell {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanCell {
    fn new() -> SpanCell {
        SpanCell {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    fn add(&self, dur_ns: u64) {
        self.buckets[bucket_of(dur_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
    }

    /// Materialize the atomic buckets as a `des::stats::Histogram` over
    /// bucket-index space `[0, NBUCKETS)` — fixed geometry, so every
    /// cell's histogram merges with every other's.
    fn to_histogram(&self) -> Histogram {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Histogram::from_counts(0.0, NBUCKETS as f64, &counts)
    }
}

/// Last-value + sample-count cell for one (track, counter-name).
struct CounterCell {
    last_bits: AtomicU64,
    samples: AtomicU64,
    max_bits: AtomicU64,
}

impl CounterCell {
    fn new() -> CounterCell {
        CounterCell {
            last_bits: AtomicU64::new(0f64.to_bits()),
            samples: AtomicU64::new(0),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    #[inline]
    fn sample(&self, value: f64) {
        self.last_bits.store(value.to_bits(), Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
        // Monotone max via CAS: counters are sampled rarely enough that
        // the loop almost never retries.
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while value > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }
}

/// Per-track cell directory. Categories/counter names per track are few
/// (≤ ~8), so a linear probe over a small Vec beats hashing.
#[derive(Default)]
struct TrackCells {
    spans: Vec<(&'static str, Arc<SpanCell>)>,
    counters: Vec<(&'static str, Arc<CounterCell>)>,
    instants: Vec<((&'static str, SmallName), Arc<AtomicU64>)>,
}

#[derive(Default)]
struct Registry {
    tracks: Vec<Track>,
    index: HashMap<(String, String), TrackId>,
    cells: Vec<TrackCells>,
}

/// Aggregated view of one (process, category) span group, as served on
/// `/metrics`.
#[derive(Debug, Clone)]
pub struct SpanGroup {
    pub process: String,
    pub category: &'static str,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
}

/// One counter series on `/metrics`.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    pub process: String,
    pub thread: String,
    pub name: &'static str,
    pub last: f64,
    pub max: f64,
    pub samples: u64,
}

/// One instant-count series on `/metrics`.
#[derive(Debug, Clone)]
pub struct InstantSeries {
    pub process: String,
    pub thread: String,
    pub category: &'static str,
    pub name: String,
    pub count: u64,
}

/// Full scrape snapshot (also the structured form behind `/metrics`).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub spans: Vec<SpanGroup>,
    pub counters: Vec<CounterSeries>,
    pub instants: Vec<InstantSeries>,
    pub events_total: u64,
    pub spans_total: u64,
    pub counters_total: u64,
    pub instants_total: u64,
    pub ring: RingLedger,
    pub tracks: u64,
}

/// The streaming recorder. `Sync`: share it as `Arc<StreamRecorder>`
/// between the simulation thread and any number of HTTP reader threads.
pub struct StreamRecorder {
    reg: RwLock<Registry>,
    ring: Ring,
    events_total: AtomicU64,
    spans_total: AtomicU64,
    counters_total: AtomicU64,
    instants_total: AtomicU64,
}

impl Default for StreamRecorder {
    fn default() -> StreamRecorder {
        StreamRecorder::new()
    }
}

impl StreamRecorder {
    /// Default ring: 64 chunks × 1024 events ≈ the last 65k events.
    pub fn new() -> StreamRecorder {
        StreamRecorder::with_ring(1024, 64)
    }

    /// `chunk_cap` events per chunk, at most `max_chunks` published
    /// chunks retained for tail readers.
    pub fn with_ring(chunk_cap: usize, max_chunks: usize) -> StreamRecorder {
        assert!(chunk_cap > 0 && max_chunks > 0);
        StreamRecorder {
            reg: RwLock::new(Registry::default()),
            ring: Ring::new(chunk_cap, max_chunks),
            events_total: AtomicU64::new(0),
            spans_total: AtomicU64::new(0),
            counters_total: AtomicU64::new(0),
            instants_total: AtomicU64::new(0),
        }
    }

    /// Writer-side: publish the partially-filled active chunk so tail
    /// readers catch up to the latest event (call at phase boundaries;
    /// chunk publication is otherwise automatic every `chunk_cap`
    /// events).
    pub fn flush_ring(&self) {
        self.ring.flush();
    }

    /// Total events emitted through the recorder so far.
    pub fn events_total(&self) -> u64 {
        self.events_total.load(Ordering::Relaxed)
    }

    /// Ring accounting (retained / active / evicted / seq window).
    pub fn ring_ledger(&self) -> RingLedger {
        self.ring.ledger()
    }

    /// Registered tracks, in id order.
    pub fn tracks(&self) -> Vec<Track> {
        self.reg.read().expect("registry").tracks.clone()
    }

    fn span_cell(&self, track: TrackId, cat: &'static str) -> Arc<SpanCell> {
        {
            let reg = self.reg.read().expect("registry");
            if let Some(tc) = reg.cells.get(track as usize) {
                if let Some((_, cell)) = tc
                    .spans
                    .iter()
                    .find(|(c, _)| std::ptr::eq(*c, cat) || *c == cat)
                {
                    return Arc::clone(cell);
                }
            }
        }
        let mut reg = self.reg.write().expect("registry");
        let idx = track as usize;
        if reg.cells.len() <= idx {
            reg.cells.resize_with(idx + 1, TrackCells::default);
        }
        let tc = &mut reg.cells[idx];
        if let Some((_, cell)) = tc.spans.iter().find(|(c, _)| *c == cat) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(SpanCell::new());
        tc.spans.push((cat, Arc::clone(&cell)));
        cell
    }

    fn counter_cell(&self, track: TrackId, name: &'static str) -> Arc<CounterCell> {
        {
            let reg = self.reg.read().expect("registry");
            if let Some(tc) = reg.cells.get(track as usize) {
                if let Some((_, cell)) = tc
                    .counters
                    .iter()
                    .find(|(c, _)| std::ptr::eq(*c, name) || *c == name)
                {
                    return Arc::clone(cell);
                }
            }
        }
        let mut reg = self.reg.write().expect("registry");
        let idx = track as usize;
        if reg.cells.len() <= idx {
            reg.cells.resize_with(idx + 1, TrackCells::default);
        }
        let tc = &mut reg.cells[idx];
        if let Some((_, cell)) = tc.counters.iter().find(|(c, _)| *c == name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(CounterCell::new());
        tc.counters.push((name, Arc::clone(&cell)));
        cell
    }

    fn instant_cell(&self, track: TrackId, cat: &'static str, name: &str) -> Arc<AtomicU64> {
        let small = SmallName::new(name);
        {
            let reg = self.reg.read().expect("registry");
            if let Some(tc) = reg.cells.get(track as usize) {
                if let Some((_, cell)) = tc
                    .instants
                    .iter()
                    .find(|((c, n), _)| *c == cat && n.as_str() == small.as_str())
                {
                    return Arc::clone(cell);
                }
            }
        }
        let mut reg = self.reg.write().expect("registry");
        let idx = track as usize;
        if reg.cells.len() <= idx {
            reg.cells.resize_with(idx + 1, TrackCells::default);
        }
        let tc = &mut reg.cells[idx];
        if let Some((_, cell)) = tc
            .instants
            .iter()
            .find(|((c, n), _)| *c == cat && n.as_str() == small.as_str())
        {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicU64::new(0));
        tc.instants.push(((cat, small), Arc::clone(&cell)));
        cell
    }

    /// Aggregate snapshot: per-(process, category) span quantiles (via
    /// `Histogram::try_merge` across that group's cells), counter and
    /// instant series, the self-accounting totals, and the ring ledger.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let reg = self.reg.read().expect("registry");
        // --- span groups ---
        struct Group {
            hist: Histogram,
            count: u64,
            sum_ns: u64,
            min_ns: u64,
            max_ns: u64,
        }
        let mut groups: HashMap<(String, &'static str), Group> = HashMap::new();
        for (id, tc) in reg.cells.iter().enumerate() {
            let Some(track) = reg.tracks.get(id) else {
                continue;
            };
            for (cat, cell) in &tc.spans {
                let g = groups
                    .entry((track.process.clone(), cat))
                    .or_insert_with(|| Group {
                        hist: Histogram::from_counts(0.0, NBUCKETS as f64, &vec![0; NBUCKETS]),
                        count: 0,
                        sum_ns: 0,
                        min_ns: u64::MAX,
                        max_ns: 0,
                    });
                g.hist
                    .try_merge(&cell.to_histogram())
                    .expect("stream cells share one geometry");
                g.count += cell.count.load(Ordering::Relaxed);
                g.sum_ns += cell.sum_ns.load(Ordering::Relaxed);
                g.min_ns = g.min_ns.min(cell.min_ns.load(Ordering::Relaxed));
                g.max_ns = g.max_ns.max(cell.max_ns.load(Ordering::Relaxed));
            }
        }
        let mut spans: Vec<SpanGroup> = groups
            .into_iter()
            .map(|((process, category), g)| {
                let q = |p: f64| -> u64 {
                    g.hist
                        .quantile(p)
                        .map(|edge| bucket_hi((edge as usize).saturating_sub(1).min(NBUCKETS - 1)))
                        .unwrap_or(0)
                };
                SpanGroup {
                    process,
                    category,
                    count: g.count,
                    sum_ns: g.sum_ns,
                    min_ns: if g.count == 0 { 0 } else { g.min_ns },
                    max_ns: g.max_ns,
                    p50_ns: q(0.50),
                    p90_ns: q(0.90),
                    p99_ns: q(0.99),
                }
            })
            .collect();
        spans.sort_by(|a, b| (&a.process, a.category).cmp(&(&b.process, b.category)));

        // --- counter + instant series ---
        let mut counters = Vec::new();
        let mut instants = Vec::new();
        for (id, tc) in reg.cells.iter().enumerate() {
            let Some(track) = reg.tracks.get(id) else {
                continue;
            };
            for (name, cell) in &tc.counters {
                counters.push(CounterSeries {
                    process: track.process.clone(),
                    thread: track.thread.clone(),
                    name,
                    last: f64::from_bits(cell.last_bits.load(Ordering::Relaxed)),
                    max: f64::from_bits(cell.max_bits.load(Ordering::Relaxed)),
                    samples: cell.samples.load(Ordering::Relaxed),
                });
            }
            for ((cat, name), cell) in &tc.instants {
                instants.push(InstantSeries {
                    process: track.process.clone(),
                    thread: track.thread.clone(),
                    category: cat,
                    name: name.as_str().to_string(),
                    count: cell.load(Ordering::Relaxed),
                });
            }
        }
        let tracks = reg.tracks.len() as u64;
        drop(reg);
        MetricsSnapshot {
            spans,
            counters,
            instants,
            events_total: self.events_total.load(Ordering::Relaxed),
            spans_total: self.spans_total.load(Ordering::Relaxed),
            counters_total: self.counters_total.load(Ordering::Relaxed),
            instants_total: self.instants_total.load(Ordering::Relaxed),
            ring: self.ring.ledger(),
            tracks,
        }
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4) — what `GET /metrics` serves.
    pub fn prometheus_text(&self) -> String {
        let snap = self.metrics_snapshot();
        let mut out = String::with_capacity(4096);
        let secs = |ns: u64| ns as f64 / 1e9;

        out.push_str(
            "# HELP hpcc_span_latency_seconds Span durations per (process, category).\n\
             # TYPE hpcc_span_latency_seconds summary\n",
        );
        for g in &snap.spans {
            let labels = format!(
                "process=\"{}\",category=\"{}\"",
                escape_label(&g.process),
                escape_label(g.category)
            );
            for (q, v) in [(0.5, g.p50_ns), (0.9, g.p90_ns), (0.99, g.p99_ns)] {
                let _ = writeln!(
                    out,
                    "hpcc_span_latency_seconds{{{labels},quantile=\"{q}\"}} {}",
                    fmt_f64(secs(v))
                );
            }
            let _ = writeln!(
                out,
                "hpcc_span_latency_seconds_sum{{{labels}}} {}",
                fmt_f64(secs(g.sum_ns))
            );
            let _ = writeln!(
                out,
                "hpcc_span_latency_seconds_count{{{labels}}} {}",
                g.count
            );
        }

        out.push_str(
            "# HELP hpcc_counter_last Last sampled value per counter track.\n\
             # TYPE hpcc_counter_last gauge\n",
        );
        for c in &snap.counters {
            let labels = format!(
                "process=\"{}\",track=\"{}\",name=\"{}\"",
                escape_label(&c.process),
                escape_label(&c.thread),
                escape_label(c.name)
            );
            let _ = writeln!(out, "hpcc_counter_last{{{labels}}} {}", fmt_f64(c.last));
        }
        out.push_str(
            "# HELP hpcc_counter_max High-water mark per counter track.\n\
             # TYPE hpcc_counter_max gauge\n",
        );
        for c in &snap.counters {
            if c.samples == 0 {
                continue;
            }
            let labels = format!(
                "process=\"{}\",track=\"{}\",name=\"{}\"",
                escape_label(&c.process),
                escape_label(&c.thread),
                escape_label(c.name)
            );
            let _ = writeln!(out, "hpcc_counter_max{{{labels}}} {}", fmt_f64(c.max));
        }

        out.push_str(
            "# HELP hpcc_instants_total Point events per (process, category, name).\n\
             # TYPE hpcc_instants_total counter\n",
        );
        for i in &snap.instants {
            let _ = writeln!(
                out,
                "hpcc_instants_total{{process=\"{}\",track=\"{}\",category=\"{}\",name=\"{}\"}} {}",
                escape_label(&i.process),
                escape_label(&i.thread),
                escape_label(i.category),
                escape_label(&i.name),
                i.count
            );
        }

        out.push_str(
            "# HELP hpcc_recorder_events_total Events emitted through the recorder.\n\
             # TYPE hpcc_recorder_events_total counter\n",
        );
        let _ = writeln!(out, "hpcc_recorder_events_total {}", snap.events_total);
        for (name, v) in [
            ("hpcc_recorder_spans_total", snap.spans_total),
            ("hpcc_recorder_counters_total", snap.counters_total),
            ("hpcc_recorder_instants_total", snap.instants_total),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        out.push_str(
            "# HELP hpcc_recorder_ring_evicted_total Ring events dropped by eviction.\n\
             # TYPE hpcc_recorder_ring_evicted_total counter\n",
        );
        let _ = writeln!(
            out,
            "hpcc_recorder_ring_evicted_total {}",
            snap.ring.evicted_events
        );
        for (name, v) in [
            ("hpcc_recorder_ring_retained", snap.ring.retained_events),
            ("hpcc_recorder_ring_active", snap.ring.active_events),
            ("hpcc_recorder_ring_next_seq", snap.ring.next_seq),
            ("hpcc_recorder_ring_oldest_seq", snap.ring.oldest_seq),
            ("hpcc_recorder_tracks", snap.tracks),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        out
    }

    /// Incremental Chrome `trace_event` chunk: every retained ring event
    /// with sequence number ≥ `since` (capped at `max_events`), wrapped
    /// as a standalone Perfetto-loadable JSON object with track metadata.
    /// Returns the JSON and the `next` cursor to poll from. Events the
    /// reader missed to eviction are reported in the `lagged` field, not
    /// silently skipped.
    pub fn trace_chunk(&self, since: u64, max_events: usize) -> (String, u64) {
        let tracks = self.tracks();
        let ids = crate::chrome::layout(&tracks);
        let chunks = self.ring.read_since(since);
        let ledger = self.ring.ledger();
        let lagged = ledger.oldest_seq.saturating_sub(since);

        let mut out = String::with_capacity(1024);
        let mut next = since.max(ledger.oldest_seq);
        let _ = write!(
            out,
            "{{\"since\":{since},\"oldest\":{},\"lagged\":{lagged},\"traceEvents\":[",
            ledger.oldest_seq
        );
        let mut first = true;
        let mut push = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        // Track metadata first, so every chunk is independently loadable.
        let mut named_pids: Vec<u32> = Vec::new();
        for (track, &(pid, tid)) in tracks.iter().zip(&ids) {
            if !named_pids.contains(&pid) {
                named_pids.push(pid);
                push(
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                         \"args\":{{\"name\":{}}}}}",
                        crate::chrome::quote(&track.process)
                    ),
                    &mut out,
                );
            }
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    crate::chrome::quote(&track.thread)
                ),
                &mut out,
            );
        }
        let mut emitted = 0usize;
        'chunks: for chunk in &chunks {
            for (i, ev) in chunk.events.iter().enumerate() {
                let seq = chunk.base_seq + i as u64;
                if seq < since {
                    continue;
                }
                if emitted >= max_events {
                    break 'chunks;
                }
                let (pid, tid) = ids.get(ev.track as usize).copied().unwrap_or((0, 0));
                let rec = match ev.kind {
                    RingKind::Span { start_ns, end_ns } => format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                         \"cat\":{},\"name\":{}}}",
                        crate::chrome::us(start_ns),
                        crate::chrome::us(end_ns - start_ns),
                        crate::chrome::quote(ev.cat),
                        crate::chrome::quote(ev.name.as_str())
                    ),
                    RingKind::Instant { at_ns } => format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                         \"cat\":{},\"name\":{}}}",
                        crate::chrome::us(at_ns),
                        crate::chrome::quote(ev.cat),
                        crate::chrome::quote(ev.name.as_str())
                    ),
                    RingKind::Counter { at_ns, value } => format!(
                        "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":{},\
                         \"args\":{{\"value\":{}}}}}",
                        crate::chrome::us(at_ns),
                        crate::chrome::quote(ev.name.as_str()),
                        if value.is_finite() {
                            format!("{value}")
                        } else {
                            "0".to_string()
                        }
                    ),
                };
                push(rec, &mut out);
                emitted += 1;
                next = seq + 1;
            }
        }
        let _ = write!(out, "\n],\"next\":{next}}}\n");
        (out, next)
    }
}

impl Recorder for StreamRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn track(&self, process: &str, thread: &str) -> TrackId {
        {
            let reg = self.reg.read().expect("registry");
            if let Some(&id) = reg.index.get(&(process.to_string(), thread.to_string())) {
                return id;
            }
        }
        let mut reg = self.reg.write().expect("registry");
        let key = (process.to_string(), thread.to_string());
        if let Some(&id) = reg.index.get(&key) {
            return id;
        }
        let id = reg.tracks.len() as TrackId;
        reg.tracks.push(Track {
            process: key.0.clone(),
            thread: key.1.clone(),
        });
        reg.index.insert(key, id);
        reg.cells.push(TrackCells::default());
        id
    }

    fn span(&self, track: TrackId, cat: &'static str, name: &str, start_ns: u64, end_ns: u64) {
        debug_assert!(start_ns <= end_ns, "span ends before it starts");
        self.span_cell(track, cat).add(end_ns - start_ns);
        self.spans_total.fetch_add(1, Ordering::Relaxed);
        self.events_total.fetch_add(1, Ordering::Relaxed);
        self.ring.push(RingEvent {
            track,
            cat,
            name: SmallName::new(name),
            kind: RingKind::Span { start_ns, end_ns },
        });
    }

    fn instant(&self, track: TrackId, cat: &'static str, name: &str, at_ns: u64) {
        self.instant_cell(track, cat, name)
            .fetch_add(1, Ordering::Relaxed);
        self.instants_total.fetch_add(1, Ordering::Relaxed);
        self.events_total.fetch_add(1, Ordering::Relaxed);
        self.ring.push(RingEvent {
            track,
            cat,
            name: SmallName::new(name),
            kind: RingKind::Instant { at_ns },
        });
    }

    fn counter(&self, track: TrackId, name: &'static str, at_ns: u64, value: f64) {
        self.counter_cell(track, name).sample(value);
        self.counters_total.fetch_add(1, Ordering::Relaxed);
        self.events_total.fetch_add(1, Ordering::Relaxed);
        self.ring.push(RingEvent {
            track,
            cat: "counter",
            name: SmallName::new(name),
            kind: RingKind::Counter { at_ns, value },
        });
    }
}

/// `Arc<StreamRecorder>` is itself a recorder, so call sites that take
/// `Rc<dyn Recorder>` can wrap a shared recorder without an adapter
/// type: `Rc::new(Arc::clone(&rec)) as Rc<dyn Recorder>`.
impl Recorder for Arc<StreamRecorder> {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
    fn track(&self, process: &str, thread: &str) -> TrackId {
        (**self).track(process, thread)
    }
    fn span(&self, track: TrackId, cat: &'static str, name: &str, start_ns: u64, end_ns: u64) {
        (**self).span(track, cat, name, start_ns, end_ns)
    }
    fn instant(&self, track: TrackId, cat: &'static str, name: &str, at_ns: u64) {
        (**self).instant(track, cat, name, at_ns)
    }
    fn counter(&self, track: TrackId, name: &'static str, at_ns: u64, value: f64) {
        (**self).counter(track, name, at_ns, value)
    }
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus sample value: decimal, never scientific with a bare `e`
/// issue — Rust's `{}` for f64 is fine, but NaN/inf must be spelled the
/// Prometheus way.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_encode_decode_invariants() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|s: u32| {
                let base = 1u64 << s;
                [
                    base.saturating_sub(1),
                    base,
                    base.saturating_add(1),
                    base.saturating_mul(3) / 2,
                ]
            })
            .chain([0, 1, 7, 8, 9, 1000, u64::MAX])
            .collect();
        values.sort_unstable();
        let mut prev_bucket = 0usize;
        for v in values {
            let b = bucket_of(v);
            assert!(b < NBUCKETS, "bucket {b} out of range for {v}");
            // decode is an upper bound and within 12.5% + 1 of v.
            let hi = bucket_hi(b);
            assert!(hi >= v, "hi({b})={hi} < {v}");
            assert!(
                hi as u128 <= v as u128 + v as u128 / 8 + 1,
                "hi({b})={hi} too far above {v}"
            );
            assert!(b >= prev_bucket, "bucket_of not monotone at {v}");
            prev_bucket = b;
        }
        // Strict monotonicity of bucket_hi over all buckets.
        for i in 1..NBUCKETS {
            assert!(bucket_hi(i) > bucket_hi(i - 1), "bucket_hi plateau at {i}");
        }
    }

    #[test]
    fn span_quantiles_track_known_distribution() {
        let r = StreamRecorder::new();
        let t = r.track("mesh nodes", "node 0");
        // 1000 spans of duration 1..=1000 µs.
        for i in 1..=1000u64 {
            r.span(t, "compute", "k", 0, i * 1000);
        }
        let snap = r.metrics_snapshot();
        assert_eq!(snap.spans.len(), 1);
        let g = &snap.spans[0];
        assert_eq!(g.count, 1000);
        assert_eq!(g.min_ns, 1000);
        assert_eq!(g.max_ns, 1_000_000);
        // Log-linear resolution is 12.5%: p50 ≈ 500 µs.
        let p50 = g.p50_ns as f64;
        assert!(
            (430_000.0..=580_000.0).contains(&p50),
            "p50 {p50} out of tolerance"
        );
        assert!(g.p50_ns <= g.p90_ns && g.p90_ns <= g.p99_ns);
    }

    #[test]
    fn ledger_identities_hold() {
        let r = StreamRecorder::with_ring(8, 2);
        let t = r.track("p", "t");
        for i in 0..100u64 {
            r.span(t, "c", "s", i, i + 1);
            r.counter(t, "q", i, i as f64);
        }
        r.instant(t, "f", "crash", 7);
        let snap = r.metrics_snapshot();
        assert_eq!(snap.events_total, 201);
        assert_eq!(
            snap.events_total,
            snap.spans_total + snap.counters_total + snap.instants_total
        );
        let ring = snap.ring;
        assert_eq!(
            snap.events_total,
            ring.retained_events + ring.active_events + ring.evicted_events
        );
        assert_eq!(ring.next_seq, snap.events_total);
        // 2 chunks × 8 events retained, the rest evicted.
        assert_eq!(ring.retained_events, 16);
        assert!(ring.evicted_events > 0);
    }

    #[test]
    fn trace_chunk_pages_by_sequence_number() {
        let r = StreamRecorder::with_ring(4, 16);
        let t = r.track("mesh nodes", "node 0");
        for i in 0..10u64 {
            r.span(t, "compute", "s", i * 10, i * 10 + 5);
        }
        r.flush_ring();
        let (json, next) = r.trace_chunk(0, 1000);
        assert_eq!(next, 10);
        let doc = crate::json::parse(&json).expect("chunk is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        let xs = events
            .iter()
            .filter(|e| e.get("ph").and_then(crate::json::Json::as_str) == Some("X"))
            .count();
        assert_eq!(xs, 10);
        // Page from the cursor: nothing new.
        let (json2, next2) = r.trace_chunk(next, 1000);
        assert_eq!(next2, next);
        let doc2 = crate::json::parse(&json2).unwrap();
        let xs2 = doc2
            .get("traceEvents")
            .and_then(crate::json::Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(crate::json::Json::as_str) == Some("X"))
            .count();
        assert_eq!(xs2, 0);
        // Mid-stream cursor sees only the tail.
        let (json3, _) = r.trace_chunk(7, 1000);
        let doc3 = crate::json::parse(&json3).unwrap();
        let xs3 = doc3
            .get("traceEvents")
            .and_then(crate::json::Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(crate::json::Json::as_str) == Some("X"))
            .count();
        assert_eq!(xs3, 3);
    }

    #[test]
    fn evicted_tail_is_reported_as_lagged() {
        let r = StreamRecorder::with_ring(4, 2);
        let t = r.track("p", "t");
        for i in 0..40u64 {
            r.instant(t, "c", "i", i);
        }
        // 2×4 retained; oldest retained seq is 32.
        let (json, _) = r.trace_chunk(0, 1000);
        let doc = crate::json::parse(&json).unwrap();
        let lagged = doc
            .get("lagged")
            .and_then(crate::json::Json::as_f64)
            .unwrap();
        assert_eq!(lagged as u64, 32);
    }

    #[test]
    fn prometheus_text_has_series_and_ledger() {
        let r = StreamRecorder::new();
        let t = r.track("sched service", "service");
        r.span(t, "wait", "job 1", 0, 1_000_000);
        r.counter(t, "pending_jobs", 0, 17.0);
        r.instant(t, "fault", "node_fault", 5);
        let text = r.prometheus_text();
        assert!(text.contains(
            "hpcc_span_latency_seconds{process=\"sched service\",category=\"wait\",quantile=\"0.5\"}"
        ));
        assert!(text.contains(
            "hpcc_span_latency_seconds_count{process=\"sched service\",category=\"wait\"} 1"
        ));
        assert!(text
            .contains("hpcc_counter_last{process=\"sched service\",track=\"service\",name=\"pending_jobs\"} 17"));
        assert!(text.contains("name=\"node_fault\"} 1"));
        assert!(text.contains("hpcc_recorder_events_total 3"));
        assert!(text.contains("hpcc_recorder_ring_evicted_total 0"));
        // Exposition lint: every non-comment line is `name{labels} value`
        // or `name value` with a parseable float.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(
                value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
                "bad sample value in line: {line}"
            );
        }
    }

    #[test]
    fn small_name_truncates_on_char_boundary() {
        let s = "é".repeat(40);
        let n = SmallName::new(&s);
        assert!(n.as_str().len() <= SmallName::CAP);
        assert!(n.as_str().chars().all(|c| c == 'é'));
        assert_eq!(SmallName::new("short").as_str(), "short");
    }
}
