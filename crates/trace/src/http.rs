//! `TelemetryServer` — the HTTP front door for a live [`StreamRecorder`].
//!
//! A tiny, dependency-free HTTP/1.1 server on `std::net::TcpListener`
//! serving three read-only endpoints against a running simulation:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4):
//!   p50/p90/p99 span summaries per (process, category), counter gauges,
//!   instant counts, and the recorder's own accounting (events seen,
//!   ring eviction drops, sequence window).
//! * `GET /trace?since=<seq>[&max=<n>]` — incremental Chrome
//!   `trace_event` JSON chunks from the recorder's event ring. Each
//!   response is independently Perfetto-loadable and carries a `next`
//!   cursor; poll with `since=next` to tail the trace live. Readers that
//!   fall behind the ring window get a `lagged` count, never silent gaps.
//! * `GET /healthz` — liveness probe (`200 ok`).
//!
//! One thread per connection (scrapers are few and connections are
//! `Connection: close`), all of them strictly readers: a scrape loads
//! atomic cells and clones `Arc`s of frozen ring chunks, so any number of
//! concurrent dashboard readers leave the simulation thread's fast path
//! untouched.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::stream::StreamRecorder;

/// Handle for a running telemetry endpoint. Dropping the handle without
/// calling [`TelemetryServer::stop`] leaves the accept thread running
/// until process exit (harmless for exhibits; tests should `stop()`).
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `rec`. Returns once the listener is live, so a scrape
    /// issued right after `start` cannot race the bind.
    pub fn start(rec: Arc<StreamRecorder>, addr: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let requests2 = Arc::clone(&requests);
        let accept = std::thread::Builder::new()
            .name("hpcc-telemetry".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(sock) = conn else { continue };
                    let rec = Arc::clone(&rec);
                    let requests = Arc::clone(&requests2);
                    // One short-lived thread per connection; handlers
                    // only read atomics and Arc-cloned chunks.
                    let _ = std::thread::Builder::new()
                        .name("hpcc-telemetry-conn".into())
                        .spawn(move || {
                            requests.fetch_add(1, Ordering::Relaxed);
                            let _ = handle(sock, &rec);
                        });
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            requests,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests accepted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept thread. In-flight connection
    /// threads finish their (short) responses on their own.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

fn handle(mut sock: TcpStream, rec: &StreamRecorder) -> std::io::Result<()> {
    sock.set_read_timeout(Some(Duration::from_secs(5)))?;
    sock.set_write_timeout(Some(Duration::from_secs(5)))?;
    // Read until the end of the request head. Bodies are ignored: every
    // endpoint is a GET.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = sock.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let Some(request_line) = head.lines().next() else {
        return respond(&mut sock, 400, "text/plain", "bad request\n");
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut sock, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut sock, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => respond(&mut sock, 200, "text/plain", "ok\n"),
        "/metrics" => {
            let body = rec.prometheus_text();
            respond(
                &mut sock,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/trace" => {
            let mut since = 0u64;
            let mut max = 100_000usize;
            for kv in query.split('&').filter(|s| !s.is_empty()) {
                let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                match k {
                    "since" => match v.parse() {
                        Ok(s) => since = s,
                        Err(_) => {
                            return respond(&mut sock, 400, "text/plain", "bad since\n");
                        }
                    },
                    "max" => match v.parse() {
                        Ok(m) => max = m,
                        Err(_) => {
                            return respond(&mut sock, 400, "text/plain", "bad max\n");
                        }
                    },
                    _ => {}
                }
            }
            let (body, _next) = rec.trace_chunk(since, max);
            respond(&mut sock, 200, "application/json", &body)
        }
        _ => respond(&mut sock, 404, "text/plain", "not found\n"),
    }
}

fn respond(sock: &mut TcpStream, status: u16, ctype: &str, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())?;
    sock.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    /// Minimal HTTP client for tests and the bench harness.
    pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
        let mut sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(Duration::from_secs(5)))?;
        write!(
            sock,
            "GET {path} HTTP/1.1\r\nHost: hpcc\r\nConnection: close\r\n\r\n"
        )?;
        let mut raw = String::new();
        sock.read_to_string(&mut raw)?;
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        Ok((status, body))
    }

    fn server_with_data() -> (TelemetryServer, Arc<StreamRecorder>) {
        let rec = Arc::new(StreamRecorder::new());
        let t = rec.track("mesh nodes", "node 0");
        rec.span(t, "compute", "dgemm", 0, 1500);
        rec.counter(t, "queue_depth", 10, 3.0);
        rec.instant(t, "fault", "crash", 20);
        rec.flush_ring();
        let srv = TelemetryServer::start(Arc::clone(&rec), "127.0.0.1:0").expect("bind");
        (srv, rec)
    }

    #[test]
    fn healthz_metrics_and_trace_round_trip() {
        let (srv, _rec) = server_with_data();
        let addr = srv.addr();

        let (code, body) = get(addr, "/healthz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, body) = get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("hpcc_span_latency_seconds_count"));
        assert!(body.contains("hpcc_recorder_events_total 3"));

        let (code, body) = get(addr, "/trace?since=0").unwrap();
        assert_eq!(code, 200);
        let doc = crate::json::parse(&body).expect("trace chunk is valid JSON");
        let next = doc.get("next").and_then(crate::json::Json::as_f64).unwrap() as u64;
        assert_eq!(next, 3);

        // Tail from the cursor: empty chunk, same cursor.
        let (code, body) = get(addr, &format!("/trace?since={next}")).unwrap();
        assert_eq!(code, 200);
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(
            doc.get("next").and_then(crate::json::Json::as_f64).unwrap() as u64,
            next
        );

        let (code, _) = get(addr, "/nope").unwrap();
        assert_eq!(code, 404);
        let (code, _) = get(addr, "/trace?since=xyz").unwrap();
        assert_eq!(code, 400);

        assert!(srv.requests() >= 5);
        srv.stop();
    }

    #[test]
    fn many_concurrent_readers_against_live_writes() {
        let (srv, rec) = server_with_data();
        let addr = srv.addr();
        let writer_done = Arc::new(AtomicBool::new(false));
        let t = rec.track("mesh nodes", "node 1");

        std::thread::scope(|scope| {
            let done = Arc::clone(&writer_done);
            let rec2 = Arc::clone(&rec);
            scope.spawn(move || {
                for i in 0u64..20_000 {
                    rec2.span(t, "compute", "k", i, i + 3);
                }
                rec2.flush_ring();
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..4 {
                let done = Arc::clone(&writer_done);
                scope.spawn(move || {
                    let mut cursor = 0u64;
                    while !done.load(Ordering::SeqCst) {
                        let (code, body) = get(addr, "/metrics").expect("scrape");
                        assert_eq!(code, 200);
                        assert!(body.contains("hpcc_recorder_events_total"));
                        let (code, body) =
                            get(addr, &format!("/trace?since={cursor}&max=4096")).expect("tail");
                        assert_eq!(code, 200);
                        let doc = crate::json::parse(&body).expect("valid chunk");
                        cursor =
                            doc.get("next").and_then(crate::json::Json::as_f64).unwrap() as u64;
                    }
                });
            }
        });
        // After the dust settles the ledger must balance exactly.
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.events_total, 3 + 20_000);
        assert_eq!(
            snap.events_total,
            snap.ring.retained_events + snap.ring.active_events + snap.ring.evicted_events
        );
        srv.stop();
    }
}
