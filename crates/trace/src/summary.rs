//! Plain-text metrics summary exporter.
//!
//! Reduces a buffered trace to the aggregates a terminal reader wants:
//! span-latency histograms (p50/p90/p99 per process/category, built with
//! [`des::stats::Histogram`] and combined via `Histogram::merge`), the
//! top-k hottest mesh links by occupancy, and a per-node busy-time
//! breakdown whose rows sum exactly to total sim time (compute + send +
//! recv + blocked + delay + idle = elapsed).

use std::collections::HashMap;
use std::fmt::Write as _;

use des::stats::Histogram;

use crate::{names, Event, MemRecorder, Track, TrackId};

/// Busy-time decomposition of one mesh-node track. All figures are exact
/// integer nanoseconds of virtual time; `idle_ns` is defined as
/// `elapsed - busy`, so the row sums to `elapsed_ns` by construction —
/// the summary asserts `busy <= elapsed` rather than clamping silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBreakdown {
    pub track: TrackId,
    pub thread: String,
    pub compute_ns: u64,
    pub send_ns: u64,
    pub recv_ns: u64,
    pub blocked_ns: u64,
    pub delay_ns: u64,
    pub other_ns: u64,
    pub idle_ns: u64,
    pub elapsed_ns: u64,
}

impl NodeBreakdown {
    /// Sum of the non-idle interval categories.
    pub fn busy_ns(&self) -> u64 {
        self.compute_ns
            + self.send_ns
            + self.recv_ns
            + self.blocked_ns
            + self.delay_ns
            + self.other_ns
    }

    /// Sum of every category including idle; equals `elapsed_ns`.
    pub fn total_ns(&self) -> u64 {
        self.busy_ns() + self.idle_ns
    }
}

impl MemRecorder {
    /// Per-node busy-time breakdown for the mesh-node tracks, against a
    /// known run length (virtual ns). Panics if a node's recorded busy
    /// time exceeds `elapsed_ns` — that would mean overlapping spans, a
    /// recorder-integration bug.
    pub fn node_breakdown(&self, elapsed_ns: u64) -> Vec<NodeBreakdown> {
        self.with(|tracks, events| node_breakdown(tracks, events, elapsed_ns))
    }

    /// Render the plain-text metrics summary. `sim_elapsed_ns` is the mesh
    /// run length; when `None` it is inferred from the latest mesh event.
    pub fn metrics_summary(&self, sim_elapsed_ns: Option<u64>) -> String {
        self.with(|tracks, events| render(tracks, events, sim_elapsed_ns))
    }
}

fn node_breakdown(tracks: &[Track], events: &[Event], elapsed_ns: u64) -> Vec<NodeBreakdown> {
    let mut rows: Vec<NodeBreakdown> = tracks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.process == names::MESH_NODES)
        .map(|(id, t)| NodeBreakdown {
            track: id as TrackId,
            thread: t.thread.clone(),
            compute_ns: 0,
            send_ns: 0,
            recv_ns: 0,
            blocked_ns: 0,
            delay_ns: 0,
            other_ns: 0,
            idle_ns: 0,
            elapsed_ns,
        })
        .collect();
    let index: HashMap<TrackId, usize> =
        rows.iter().enumerate().map(|(i, r)| (r.track, i)).collect();
    for e in events {
        if let Event::Span {
            track,
            cat,
            start_ns,
            end_ns,
            ..
        } = e
        {
            let Some(&i) = index.get(track) else { continue };
            let d = end_ns - start_ns;
            let row = &mut rows[i];
            match *cat {
                "compute" => row.compute_ns += d,
                "send" => row.send_ns += d,
                "recv" => row.recv_ns += d,
                "blocked" => row.blocked_ns += d,
                "delay" => row.delay_ns += d,
                _ => row.other_ns += d,
            }
        }
    }
    for row in &mut rows {
        let busy = row.busy_ns();
        assert!(
            busy <= elapsed_ns,
            "node track '{}' busy {}ns exceeds elapsed {}ns (overlapping spans?)",
            row.thread,
            busy,
            elapsed_ns
        );
        row.idle_ns = elapsed_ns - busy;
    }
    rows
}

/// Latest event end timestamp on simulator-time tracks (mesh + des).
fn inferred_elapsed(tracks: &[Track], events: &[Event]) -> u64 {
    let sim = |id: TrackId| {
        tracks.get(id as usize).is_some_and(|t| {
            matches!(
                t.process.as_str(),
                names::MESH_NODES | names::MESH_LINKS | names::DES
            )
        })
    };
    events
        .iter()
        .filter(|e| sim(e.track()))
        .map(|e| match *e {
            Event::Span { end_ns, .. } => end_ns,
            Event::Instant { at_ns, .. } => at_ns,
            Event::Counter { at_ns, .. } => at_ns,
        })
        .max()
        .unwrap_or(0)
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn render(tracks: &[Track], events: &[Event], sim_elapsed_ns: Option<u64>) -> String {
    let mut out = String::new();
    let elapsed = sim_elapsed_ns.unwrap_or_else(|| inferred_elapsed(tracks, events));
    let _ = writeln!(out, "== trace metrics summary ==");
    let _ = writeln!(
        out,
        "events: {}   tracks: {}   mesh elapsed: {:.6} s",
        events.len(),
        tracks.len(),
        elapsed as f64 / 1e9
    );

    // --- span latency histograms per (process, category) ----------------
    // One histogram per track/category, merged across tracks of the same
    // process — this is the Histogram::merge consumer. Geometry is per
    // (process, category): [0, that group's max span), 256 buckets, µs.
    // A single global ceiling would flatten µs-scale mesh spans into
    // bucket 0 next to hour-scale scheduler waits.
    type Key = (String, &'static str);
    let key_of = |track: TrackId, cat: &'static str| -> Option<Key> {
        tracks.get(track as usize).map(|t| (t.process.clone(), cat))
    };
    let mut group_max: HashMap<Key, f64> = HashMap::new();
    for e in events {
        if let Event::Span {
            track,
            cat,
            start_ns,
            end_ns,
            ..
        } = e
        {
            if let Some(k) = key_of(*track, cat) {
                let us = (end_ns - start_ns) as f64 / 1e3;
                let hi = group_max.entry(k).or_insert(0.0);
                *hi = hi.max(us);
            }
        }
    }
    let geom = |k: &Key| -> f64 {
        let m = group_max.get(k).copied().unwrap_or(0.0);
        if m > 0.0 {
            m * 1.0001
        } else {
            1.0
        }
    };
    let mut per_track: HashMap<(TrackId, &'static str), Histogram> = HashMap::new();
    let mut totals: HashMap<Key, (u64, u64)> = HashMap::new(); // count, total ns
    for e in events {
        if let Event::Span {
            track,
            cat,
            start_ns,
            end_ns,
            ..
        } = e
        {
            let Some(k) = key_of(*track, cat) else {
                continue;
            };
            per_track
                .entry((*track, cat))
                .or_insert_with(|| Histogram::new(0.0, geom(&k), 256))
                .add((end_ns - start_ns) as f64 / 1e3);
            let entry = totals.entry(k).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += end_ns - start_ns;
        }
    }
    let mut merged: HashMap<Key, Histogram> = HashMap::new();
    for ((track, cat), h) in &per_track {
        let Some(k) = key_of(*track, cat) else {
            continue;
        };
        let hi = geom(&k);
        merged
            .entry(k)
            .or_insert_with(|| Histogram::new(0.0, hi, 256))
            .merge(h);
    }
    let mut keys: Vec<&Key> = merged.keys().collect();
    keys.sort();
    let _ = writeln!(out, "\n-- span latencies (µs) --");
    let _ = writeln!(
        out,
        "{:<12} {:<9} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "process", "category", "count", "p50", "p90", "p99", "total_s"
    );
    for key in keys {
        let h = &merged[key];
        let (count, total_ns) = totals[key];
        let q = |p: f64| match h.quantile(p) {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<12} {:<9} {:>8} {:>12} {:>12} {:>12} {:>12.6}",
            key.0,
            key.1,
            count,
            q(0.50),
            q(0.90),
            q(0.99),
            total_ns as f64 / 1e9
        );
    }

    // --- top-k hottest mesh links ---------------------------------------
    let mut link_busy: HashMap<TrackId, u64> = HashMap::new();
    for e in events {
        if let Event::Span {
            track,
            start_ns,
            end_ns,
            ..
        } = e
        {
            if tracks
                .get(*track as usize)
                .is_some_and(|t| t.process == names::MESH_LINKS)
            {
                *link_busy.entry(*track).or_insert(0) += end_ns - start_ns;
            }
        }
    }
    let mut hottest: Vec<(TrackId, u64)> = link_busy.into_iter().collect();
    hottest.sort_by_key(|&(id, busy)| (std::cmp::Reverse(busy), id));
    let _ = writeln!(
        out,
        "\n-- hottest mesh links (top {}) --",
        hottest.len().min(10)
    );
    let _ = writeln!(out, "{:<24} {:>12} {:>10}", "link", "busy_s", "occupancy");
    for &(id, busy) in hottest.iter().take(10) {
        let _ = writeln!(
            out,
            "{:<24} {:>12.6} {:>9.2}%",
            tracks[id as usize].thread,
            busy as f64 / 1e9,
            pct(busy, elapsed)
        );
    }

    // --- per-node busy-time breakdown -----------------------------------
    let rows = node_breakdown(tracks, events, elapsed);
    let _ = writeln!(out, "\n-- per-node busy time (% of elapsed) --");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "node", "compute", "send", "recv", "blocked", "delay", "other", "idle", "total_s"
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "{:<10} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>12.6}",
            row.thread,
            pct(row.compute_ns, elapsed),
            pct(row.send_ns, elapsed),
            pct(row.recv_ns, elapsed),
            pct(row.blocked_ns, elapsed),
            pct(row.delay_ns, elapsed),
            pct(row.other_ns, elapsed),
            pct(row.idle_ns, elapsed),
            row.total_ns() as f64 / 1e9
        );
    }
    if !rows.is_empty() {
        let blocked: u64 = rows.iter().map(|r| r.blocked_ns).sum();
        let compute: u64 = rows.iter().map(|r| r.compute_ns).sum();
        let whole = elapsed * rows.len() as u64;
        let _ = writeln!(
            out,
            "fleet: compute {:.2}%  blocked {:.2}%  ({} nodes)",
            pct(compute, whole),
            pct(blocked, whole),
            rows.len()
        );
    }

    // --- instant counts (faults, retries, reroutes, ...) ----------------
    let mut instants: HashMap<(&'static str, String), u64> = HashMap::new();
    for e in events {
        if let Event::Instant { cat, name, .. } = e {
            *instants.entry((cat, name.clone())).or_insert(0) += 1;
        }
    }
    if !instants.is_empty() {
        let mut rows: Vec<((&'static str, String), u64)> = instants.into_iter().collect();
        rows.sort();
        let _ = writeln!(out, "\n-- instant events --");
        for ((cat, name), n) in rows {
            let _ = writeln!(out, "{cat:<10} {name:<20} x{n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn mesh_recorder() -> MemRecorder {
        let r = MemRecorder::new();
        let n0 = r.track(names::MESH_NODES, "node 0");
        let n1 = r.track(names::MESH_NODES, "node 1");
        let l0 = r.track(names::MESH_LINKS, "link 0");
        r.span(n0, "compute", "dgemm", 0, 600);
        r.span(n0, "send", "send->1", 600, 650);
        r.span(n0, "blocked", "recv", 650, 900);
        r.span(n1, "compute", "dgemm", 0, 400);
        r.span(n1, "recv", "recv", 400, 450);
        r.span(l0, "link", "0->1", 600, 640);
        r.instant(n1, "fault", "crash", 800);
        r
    }

    #[test]
    fn breakdown_rows_sum_exactly_to_elapsed() {
        let r = mesh_recorder();
        let rows = r.node_breakdown(1_000);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.total_ns(),
                1_000,
                "row {} must sum to elapsed",
                row.thread
            );
        }
        assert_eq!(rows[0].compute_ns, 600);
        assert_eq!(rows[0].idle_ns, 100);
        assert_eq!(rows[1].idle_ns, 550);
    }

    #[test]
    #[should_panic(expected = "exceeds elapsed")]
    fn breakdown_rejects_busy_beyond_elapsed() {
        let r = mesh_recorder();
        let _ = r.node_breakdown(500);
    }

    #[test]
    fn summary_mentions_links_nodes_and_instants() {
        let r = mesh_recorder();
        let text = r.metrics_summary(Some(1_000));
        assert!(text.contains("hottest mesh links"));
        assert!(text.contains("link 0"));
        assert!(text.contains("per-node busy time"));
        assert!(text.contains("crash"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn summary_infers_elapsed_from_latest_mesh_event() {
        let r = mesh_recorder();
        let text = r.metrics_summary(None);
        // Latest mesh-node event is the blocked span ending at 900 ns.
        assert!(
            text.contains("0.000001 s") || text.contains("9.00e-7") || text.contains("0.0000009")
        );
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        let r = MemRecorder::new();
        let text = r.metrics_summary(None);
        assert!(text.contains("events: 0"));
    }
}
