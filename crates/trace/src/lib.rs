//! `hpcc-trace` — structured tracing & metrics for the HPCC simulators.
//!
//! The simulators (the Delta mesh, the NREN flow model, the scheduler) and
//! the host kernels emit *spans* (an interval on a track), *instants*
//! (a point event) and *counters* (a sampled value) through the [`Recorder`]
//! trait. Two recorders ship here:
//!
//! * [`NullRecorder`] — every hook is a no-op behind a single `is_enabled()`
//!   branch. All pre-existing entry points route through it, so an
//!   uninstrumented run is bit-identical to the pre-trace code: the recorder
//!   only *observes* timestamps the simulator already computed; it never
//!   schedules events, draws randomness, or touches simulator state.
//! * [`MemRecorder`] — buffers everything in memory, then exports either a
//!   Chrome `trace_event` JSON ([`MemRecorder::to_chrome_json`], loadable in
//!   Perfetto / `chrome://tracing`, one track per mesh node and link) or a
//!   plain-text metrics summary ([`MemRecorder::metrics_summary`]: p50/p99
//!   latency histograms, top-k hottest links, per-node blocked-time
//!   breakdown).
//!
//! A *track* is a (process, thread) pair — e.g. `("mesh nodes", "node 12")`
//! — and maps onto a Chrome pid/tid so each mesh node and each channel gets
//! its own row in the viewer. Track-name conventions used by the simulators
//! live in [`names`]; the summary exporter keys off them.
//!
//! Simulator timestamps are exact integer nanoseconds of virtual time.
//! Host-kernel tracks ([`WallTrack`]) use real wall-clock nanoseconds from a
//! per-track origin instead; both kinds coexist in one trace as separate
//! processes.

use std::cell::RefCell;
use std::collections::HashMap;

pub mod chrome;
pub mod http;
pub mod json;
pub mod stream;
pub mod summary;

pub use http::TelemetryServer;
pub use stream::{MetricsSnapshot, RingLedger, StreamRecorder};
pub use summary::NodeBreakdown;

/// Handle for one (process, thread) row. Dense, allocated by the recorder.
pub type TrackId = u32;

/// Sink for trace events. Object-safe so simulators can hold
/// `Rc<dyn Recorder>` without being generic over the sink.
///
/// Contract: implementations must be pure observers — no panics, no
/// interaction with simulation state. Callers should gate any allocation
/// needed to *format* an event name on [`Recorder::is_enabled`].
pub trait Recorder {
    /// Fast path: when `false`, callers skip all event construction.
    fn is_enabled(&self) -> bool;

    /// Intern a (process, thread) pair; returns the same id for the same
    /// pair. Disabled recorders return a dummy id.
    fn track(&self, process: &str, thread: &str) -> TrackId;

    /// A closed interval `[start_ns, end_ns]` on a track.
    fn span(&self, track: TrackId, cat: &'static str, name: &str, start_ns: u64, end_ns: u64);

    /// A point event.
    fn instant(&self, track: TrackId, cat: &'static str, name: &str, at_ns: u64);

    /// A sampled counter value.
    fn counter(&self, track: TrackId, name: &'static str, at_ns: u64, value: f64);
}

/// The default sink: discards everything, reports disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn track(&self, _process: &str, _thread: &str) -> TrackId {
        0
    }
    fn span(&self, _t: TrackId, _c: &'static str, _n: &str, _s: u64, _e: u64) {}
    fn instant(&self, _t: TrackId, _c: &'static str, _n: &str, _a: u64) {}
    fn counter(&self, _t: TrackId, _n: &'static str, _a: u64, _v: f64) {}
}

/// Track-name conventions shared by the instrumented simulators and the
/// summary exporter. Process names group tracks into Chrome "processes".
pub mod names {
    /// One track per mesh node; spans are compute/send/recv/blocked/delay.
    pub const MESH_NODES: &str = "mesh nodes";
    /// One track per mesh channel; spans are message occupancy windows.
    pub const MESH_LINKS: &str = "mesh links";
    /// Event-queue / executor counters sampled from the dispatch loop.
    pub const DES: &str = "des";
    /// One track per scheduler job; spans are wait/run/killed.
    pub const SCHED: &str = "sched";
    /// Scheduler-service tracks: aggregate queue counters plus one track
    /// per tenant (admits/rejects/retries).
    pub const SCHED_SVC: &str = "sched service";
    /// One track per WAN flow; spans are the transfer lifetime.
    pub const WAN_FLOWS: &str = "wan flows";
    /// One track per directed WAN link; counters are allocated rate.
    pub const WAN_LINKS: &str = "wan links";
    /// The WAN flow solver; counters are affected-set (dirty) sizes
    /// per incremental resolve plus cumulative full-resolve fallbacks.
    pub const WAN_SOLVER: &str = "wan solver";
    /// Sharded-DES lane runtime: one track per event lane plus an
    /// aggregate track; counters are events, windows, and cross-lane
    /// mailbox traffic (the `HPCC_LANE_STATS` diagnostics, first-class).
    pub const DES_LANES: &str = "des lanes";
    /// Host-side kernel tracks (wall-clock time base).
    pub const HOST: &str = "host";
}

/// One buffered event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Interval `[start_ns, end_ns]` on `track`.
    Span {
        track: TrackId,
        cat: &'static str,
        name: String,
        start_ns: u64,
        end_ns: u64,
    },
    /// Point event on `track`.
    Instant {
        track: TrackId,
        cat: &'static str,
        name: String,
        at_ns: u64,
    },
    /// Counter sample on `track`.
    Counter {
        track: TrackId,
        name: &'static str,
        at_ns: u64,
        value: f64,
    },
}

impl Event {
    /// Timestamp the event sorts by within its track (span start).
    pub fn ts_ns(&self) -> u64 {
        match *self {
            Event::Span { start_ns, .. } => start_ns,
            Event::Instant { at_ns, .. } => at_ns,
            Event::Counter { at_ns, .. } => at_ns,
        }
    }

    /// Track the event belongs to.
    pub fn track(&self) -> TrackId {
        match *self {
            Event::Span { track, .. } => track,
            Event::Instant { track, .. } => track,
            Event::Counter { track, .. } => track,
        }
    }
}

/// A registered (process, thread) row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    pub process: String,
    pub thread: String,
}

#[derive(Default)]
struct MemInner {
    tracks: Vec<Track>,
    index: HashMap<(String, String), TrackId>,
    events: Vec<Event>,
}

/// In-memory recorder. Interior mutability so the simulators can share it
/// as `Rc<MemRecorder>` coerced to `Rc<dyn Recorder>`.
#[derive(Default)]
pub struct MemRecorder {
    inner: RefCell<MemInner>,
}

impl MemRecorder {
    pub fn new() -> MemRecorder {
        MemRecorder::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of registered tracks.
    pub fn track_count(&self) -> usize {
        self.inner.borrow().tracks.len()
    }

    /// Snapshot of the registered tracks, in registration (id) order.
    pub fn tracks(&self) -> Vec<Track> {
        self.inner.borrow().tracks.clone()
    }

    /// Snapshot of the buffered events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.clone()
    }

    /// Run `f` over the buffered state without cloning it.
    pub fn with<R>(&self, f: impl FnOnce(&[Track], &[Event]) -> R) -> R {
        let inner = self.inner.borrow();
        f(&inner.tracks, &inner.events)
    }
}

impl Recorder for MemRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn track(&self, process: &str, thread: &str) -> TrackId {
        let mut inner = self.inner.borrow_mut();
        let key = (process.to_string(), thread.to_string());
        if let Some(&id) = inner.index.get(&key) {
            return id;
        }
        let id = inner.tracks.len() as TrackId;
        inner.tracks.push(Track {
            process: key.0.clone(),
            thread: key.1.clone(),
        });
        inner.index.insert(key, id);
        id
    }

    fn span(&self, track: TrackId, cat: &'static str, name: &str, start_ns: u64, end_ns: u64) {
        debug_assert!(start_ns <= end_ns, "span ends before it starts");
        self.inner.borrow_mut().events.push(Event::Span {
            track,
            cat,
            name: name.to_string(),
            start_ns,
            end_ns,
        });
    }

    fn instant(&self, track: TrackId, cat: &'static str, name: &str, at_ns: u64) {
        self.inner.borrow_mut().events.push(Event::Instant {
            track,
            cat,
            name: name.to_string(),
            at_ns,
        });
    }

    fn counter(&self, track: TrackId, name: &'static str, at_ns: u64, value: f64) {
        self.inner.borrow_mut().events.push(Event::Counter {
            track,
            name,
            at_ns,
            value,
        });
    }
}

/// Wall-clock track for host-side kernels: anchors `std::time::Instant`
/// elapsed nanoseconds to a trace track. When the recorder is disabled the
/// clock is never read, so the traced kernel variants cost one branch.
pub struct WallTrack<'a> {
    rec: &'a dyn Recorder,
    track: TrackId,
    enabled: bool,
    origin: std::time::Instant,
}

impl<'a> WallTrack<'a> {
    /// Create (or reuse) the track `(process, thread)` on `rec`.
    pub fn new(rec: &'a dyn Recorder, process: &str, thread: &str) -> WallTrack<'a> {
        let enabled = rec.is_enabled();
        let track = if enabled {
            rec.track(process, thread)
        } else {
            0
        };
        WallTrack {
            rec,
            track,
            enabled,
            origin: std::time::Instant::now(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Wall-clock nanoseconds since this track's origin (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.origin.elapsed().as_nanos() as u64
    }

    /// Emit a span from `start_ns` (a prior [`WallTrack::now_ns`]) to now.
    pub fn span_from(&self, cat: &'static str, name: &str, start_ns: u64) {
        if !self.enabled {
            return;
        }
        let end = self.now_ns().max(start_ns);
        self.rec.span(self.track, cat, name, start_ns, end);
    }

    /// Emit a counter sample stamped now.
    pub fn counter(&self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        self.rec.counter(self.track, name, self.now_ns(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.is_enabled());
        assert_eq!(r.track("p", "t"), 0);
        r.span(0, "c", "n", 0, 1);
        r.instant(0, "c", "n", 0);
        r.counter(0, "n", 0, 1.0);
    }

    #[test]
    fn mem_recorder_interns_tracks() {
        let r = MemRecorder::new();
        let a = r.track("mesh nodes", "node 0");
        let b = r.track("mesh nodes", "node 1");
        let a2 = r.track("mesh nodes", "node 0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.track_count(), 2);
        assert_eq!(r.tracks()[a as usize].thread, "node 0");
    }

    #[test]
    fn mem_recorder_buffers_events_in_order() {
        let r = MemRecorder::new();
        let t = r.track("p", "t");
        r.span(t, "cat", "s", 10, 20);
        r.instant(t, "cat", "i", 15);
        r.counter(t, "c", 16, 2.5);
        let ev = r.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].ts_ns(), 10);
        assert!(matches!(ev[1], Event::Instant { at_ns: 15, .. }));
        assert!(matches!(ev[2], Event::Counter { value, .. } if value == 2.5));
    }

    #[test]
    fn wall_track_disabled_never_reads_clock() {
        let r = NullRecorder;
        let w = WallTrack::new(&r, "host", "gemm");
        assert!(!w.enabled());
        assert_eq!(w.now_ns(), 0);
        w.span_from("phase", "pack_a", 0);
    }

    #[test]
    fn wall_track_emits_monotone_spans() {
        let r = MemRecorder::new();
        let w = WallTrack::new(&r, "host", "lu");
        let t0 = w.now_ns();
        w.span_from("phase", "panel", t0);
        let ev = r.events();
        assert_eq!(ev.len(), 1);
        match &ev[0] {
            Event::Span {
                start_ns, end_ns, ..
            } => assert!(start_ns <= end_ns),
            other => panic!("expected span, got {other:?}"),
        }
    }
}
