//! Minimal JSON parser used to self-validate exported traces (the CI step
//! runs `jq empty` as well; this keeps the check available in unit tests
//! without a registry dependency). Supports the full JSON grammar the
//! Chrome exporter emits: objects, arrays, strings with escapes, numbers,
//! booleans, null.

/// Parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing whitespace only.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(members)),
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code =
                                code * 16 + (d as char).to_digit(16).ok_or("invalid \\u escape")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                },
                b if b < 0x20 => return Err("unescaped control character".into()),
                b => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"x->y"},null],"c":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x->y"));
        assert_eq!(v.get("c"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn parses_unicode_escapes_and_multibyte() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"µs\"").unwrap(), Json::Str("µs".into()));
    }
}
