//! Chrome `trace_event` JSON exporter.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) understood by
//! Perfetto and `chrome://tracing`. Each recorded process becomes a Chrome
//! pid, each track a tid, so every mesh node and every channel renders as
//! its own row. Spans are complete events (`ph:"X"`), instants `ph:"i"`,
//! counters `ph:"C"`; `process_name` / `thread_name` metadata events label
//! the rows.
//!
//! Timestamps are microseconds. Simulator times are exact integer
//! nanoseconds, so they are written as exact decimals (`ns/1000` with a
//! three-digit fraction) rather than routed through floating point. Events
//! are sorted by (pid, tid, ts), which makes per-track timestamps
//! monotonically non-decreasing — the property the golden test and the CI
//! check assert.

use crate::{Event, MemRecorder, Track, TrackId};

impl MemRecorder {
    /// Serialize the buffered trace to Chrome `trace_event` JSON.
    pub fn to_chrome_json(&self) -> String {
        self.with(export)
    }
}

/// pid/tid assignment for one track: pids number distinct process names in
/// first-appearance order, tids number tracks within their process. Shared
/// with the streaming chunk exporter so live chunks and post-hoc exports
/// agree on row identity.
pub(crate) fn layout(tracks: &[Track]) -> Vec<(u32, u32)> {
    let mut processes: Vec<&str> = Vec::new();
    let mut per_process_tids: Vec<u32> = Vec::new();
    let mut out = Vec::with_capacity(tracks.len());
    for t in tracks {
        let pidx = match processes.iter().position(|p| *p == t.process) {
            Some(i) => i,
            None => {
                processes.push(&t.process);
                per_process_tids.push(0);
                processes.len() - 1
            }
        };
        per_process_tids[pidx] += 1;
        out.push((pidx as u32 + 1, per_process_tids[pidx]));
    }
    out
}

fn export(tracks: &[Track], events: &[Event]) -> String {
    let ids = layout(tracks);
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };

    // Metadata: name each process once, each thread (track) once.
    let mut named_pids: Vec<u32> = Vec::new();
    for (track, &(pid, tid)) in tracks.iter().zip(&ids) {
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    quote(&track.process)
                ),
                &mut out,
                &mut first,
            );
        }
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                quote(&track.thread)
            ),
            &mut out,
            &mut first,
        );
    }

    // Sort events by (pid, tid, ts); the sort is stable, so simultaneous
    // events keep emission order.
    let mut ordered: Vec<&Event> = events.iter().collect();
    ordered.sort_by_key(|e| {
        let (pid, tid) = id_of(e.track(), &ids);
        (pid, tid, e.ts_ns())
    });

    for e in ordered {
        let (pid, tid) = id_of(e.track(), &ids);
        let rec = match e {
            Event::Span {
                cat,
                name,
                start_ns,
                end_ns,
                ..
            } => format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"cat\":{},\"name\":{}}}",
                us(*start_ns),
                us(end_ns - start_ns),
                quote(cat),
                quote(name)
            ),
            Event::Instant {
                cat, name, at_ns, ..
            } => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                 \"cat\":{},\"name\":{}}}",
                us(*at_ns),
                quote(cat),
                quote(name)
            ),
            Event::Counter {
                name, at_ns, value, ..
            } => format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":{},\
                 \"args\":{{\"value\":{}}}}}",
                us(*at_ns),
                quote(name),
                num(*value)
            ),
        };
        push(rec, &mut out, &mut first);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn id_of(track: TrackId, ids: &[(u32, u32)]) -> (u32, u32) {
    // Events on unregistered tracks (disabled-recorder dummy id) land on a
    // synthetic (0, 0) row rather than panicking.
    ids.get(track as usize).copied().unwrap_or((0, 0))
}

/// Exact microsecond rendering of an integer nanosecond count.
pub(crate) fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Finite JSON number; non-finite samples are clamped to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// JSON string literal with escaping.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::Recorder;

    fn sample_recorder() -> MemRecorder {
        let r = MemRecorder::new();
        let n0 = r.track("mesh nodes", "node 0");
        let n1 = r.track("mesh nodes", "node 1");
        let l0 = r.track("mesh links", "link 0 \"east\"");
        // Deliberately out of order per track: the exporter must sort.
        r.span(n0, "compute", "dgemm", 2_500, 4_000);
        r.span(n0, "send", "send->1", 1_000, 1_250);
        r.instant(n1, "fault", "crash", 3_000);
        r.span(n1, "blocked", "recv", 500, 3_000);
        r.counter(l0, "occupancy", 2_000, 1.0);
        r.counter(l0, "occupancy", 1_500, 0.0);
        r
    }

    /// Golden test: the export is valid JSON and per-track `ts` values are
    /// monotonically non-decreasing.
    #[test]
    fn chrome_export_is_valid_json_with_monotonic_ts_per_track() {
        let json = sample_recorder().to_chrome_json();
        let doc = parse(&json).expect("exporter must emit valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut last_ts: std::collections::HashMap<(u64, u64), f64> = Default::default();
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            assert!(matches!(ph, "X" | "i" | "C" | "M"), "unexpected ph {ph}");
            if ph == "M" {
                continue;
            }
            let pid = e.get("pid").and_then(Json::as_f64).unwrap() as u64;
            let tid = e.get("tid").and_then(Json::as_f64).unwrap() as u64;
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            let prev = last_ts.insert((pid, tid), ts);
            if let Some(prev) = prev {
                assert!(
                    ts >= prev,
                    "ts regressed on track ({pid},{tid}): {prev} -> {ts}"
                );
            }
        }
    }

    #[test]
    fn chrome_export_names_every_track() {
        let json = sample_recorder().to_chrome_json();
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(thread_names, ["node 0", "node 1", "link 0 \"east\""]);
        let process_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(process_names, ["mesh nodes", "mesh links"]);
    }

    #[test]
    fn timestamps_are_exact_microsecond_decimals() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn empty_recorder_exports_valid_json() {
        let r = MemRecorder::new();
        let doc = parse(&r.to_chrome_json()).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(),
            0
        );
    }
}
