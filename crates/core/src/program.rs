//! The Federal HPCC Program structure: participating agencies, the four
//! program components, and the stated goals — exhibit T4-1 and the
//! skeleton of T4-2.

/// Agencies funded under the FY92–93 HPCC crosscut (exhibit T4-3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agency {
    /// Defense Advanced Research Projects Agency.
    Darpa,
    /// National Science Foundation.
    Nsf,
    /// Department of Energy.
    Doe,
    /// National Aeronautics and Space Administration.
    Nasa,
    /// Health & Human Services / National Institutes of Health.
    Nih,
    /// Department of Commerce / NOAA.
    Noaa,
    /// Environmental Protection Agency.
    Epa,
    /// Department of Commerce / NIST.
    Nist,
}

impl Agency {
    /// All agencies in the order the funding table lists them
    /// (descending FY92 budget).
    pub const ALL: [Agency; 8] = [
        Agency::Darpa,
        Agency::Nsf,
        Agency::Doe,
        Agency::Nasa,
        Agency::Nih,
        Agency::Noaa,
        Agency::Epa,
        Agency::Nist,
    ];

    /// Label as printed in the exhibit.
    pub fn label(self) -> &'static str {
        match self {
            Agency::Darpa => "DARPA",
            Agency::Nsf => "NSF",
            Agency::Doe => "DOE",
            Agency::Nasa => "NASA",
            Agency::Nih => "HHS/NIH",
            Agency::Noaa => "DOC/NOAA",
            Agency::Epa => "EPA",
            Agency::Nist => "DOC/NIST",
        }
    }

    /// Inverse of [`Agency::label`] — lets report tooling parse exhibit
    /// rows back into the enum.
    pub fn from_label(label: &str) -> Option<Agency> {
        Agency::ALL.into_iter().find(|a| a.label() == label)
    }
}

/// The four components of the federal program (columns of T4-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// High Performance Computing Systems.
    Hpcs,
    /// Advanced Software Technology and Algorithms.
    Asta,
    /// National Research and Education Network.
    Nren,
    /// Basic Research and Human Resources.
    Brhr,
}

impl Component {
    pub const ALL: [Component; 4] = [
        Component::Hpcs,
        Component::Asta,
        Component::Nren,
        Component::Brhr,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Component::Hpcs => "HPCS",
            Component::Asta => "ASTA",
            Component::Nren => "NREN",
            Component::Brhr => "BRHR",
        }
    }

    pub fn full_name(self) -> &'static str {
        match self {
            Component::Hpcs => "High Performance Computing Systems",
            Component::Asta => "Advanced Software Technology and Algorithms",
            Component::Nren => "National Research and Education Network",
            Component::Brhr => "Basic Research and Human Resources",
        }
    }

    /// Which crate of this repository reproduces the component's
    /// technical substance.
    pub fn reproduced_by(self) -> &'static str {
        match self {
            Component::Hpcs => "delta-mesh (Touchstone-class multicomputer simulator)",
            Component::Asta => "hpcc-kernels (Grand Challenge kernels, host + simulated)",
            Component::Nren => "nren-netsim (WAN flow simulator, consortium topologies)",
            Component::Brhr => "hpcc-core (program model, documentation, examples)",
        }
    }
}

/// The program goal and objectives of exhibit T4-1, verbatim.
pub const GOALS: [&str; 3] = [
    "Extend U.S. leadership in high performance computing and computer communications",
    "Disseminate the technologies to speed innovation and to serve national goals",
    "Spur gains in industrial competitiveness by making high performance computing \
     integral to design and production",
];

/// The four "approach" bullets of exhibit T4-3c.
pub const APPROACH: [&str; 4] = [
    "Establish high performance computing testbeds",
    "Constitute application software teams composed of discipline and computational \
     scientists to utilize and evaluate testbeds",
    "Promote technology transfer",
    "Promote collaboration, exchange of ideas and sharing of software among HPCC \
     software developers",
];

/// The statutory basis quoted on the Presidential-commitment exhibit.
pub const AUTHORITY: &str = "High Performance Computing Act of 1991 (P.L. 102-194)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_agencies_four_components() {
        assert_eq!(Agency::ALL.len(), 8);
        assert_eq!(Component::ALL.len(), 4);
    }

    #[test]
    fn labels_match_exhibit() {
        assert_eq!(Agency::Darpa.label(), "DARPA");
        assert_eq!(Agency::Nih.label(), "HHS/NIH");
        assert_eq!(Agency::Nist.label(), "DOC/NIST");
        assert_eq!(
            Component::Hpcs.full_name(),
            "High Performance Computing Systems"
        );
    }

    #[test]
    fn every_component_is_reproduced_somewhere() {
        for c in Component::ALL {
            assert!(!c.reproduced_by().is_empty());
        }
    }

    #[test]
    fn goals_and_approach_present() {
        assert_eq!(GOALS.len(), 3);
        assert_eq!(APPROACH.len(), 4);
        assert!(AUTHORITY.contains("102-194"));
    }

    #[test]
    fn agency_labels_round_trip() {
        for a in Agency::ALL {
            assert_eq!(Agency::from_label(a.label()), Some(a));
        }
        assert_eq!(Agency::from_label("KGB"), None);
    }
}
