//! Exhibit T4-3a: the FY 1992–93 federal HPCC funding table, in exact
//! integer arithmetic (tenths of a million dollars) so the regenerated
//! table reproduces the paper's figures digit for digit.

use crate::program::{Agency, Component};
use std::fmt;

/// Money in tenths of a million dollars (e.g. `Money(2322)` = $232.2 M).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(pub i64);

impl Money {
    pub fn millions(self) -> f64 {
        self.0 as f64 / 10.0
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.0 / 10, (self.0 % 10).abs())
    }
}

impl std::ops::Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        Money(iter.map(|m| m.0).sum())
    }
}

/// Fiscal year selector for the two columns of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiscalYear {
    Fy1992,
    Fy1993,
}

/// The agency × fiscal-year budget crosscut.
#[derive(Debug, Clone)]
pub struct FundingTable {
    rows: Vec<(Agency, Money, Money)>,
}

impl FundingTable {
    /// The exhibit's data, verbatim (dollars in millions):
    ///
    /// | Agency | FY 1992 | FY 1993 |
    /// |---|---|---|
    /// | DARPA | 232.2 | 275.0 |
    /// | NSF | 200.9 | 261.9 |
    /// | DOE | 92.3 | 109.1 |
    /// | NASA | 71.2 | 89.1 |
    /// | HHS/NIH | 41.3 | 44.9 |
    /// | DOC/NOAA | 9.8 | 10.8 |
    /// | EPA | 5.0 | 8.0 |
    /// | DOC/NIST | 2.1 | 4.1 |
    /// | **Total** | **654.8** | **802.9** |
    pub fn fy1992_93() -> FundingTable {
        let m = Money;
        FundingTable {
            rows: vec![
                (Agency::Darpa, m(2322), m(2750)),
                (Agency::Nsf, m(2009), m(2619)),
                (Agency::Doe, m(923), m(1091)),
                (Agency::Nasa, m(712), m(891)),
                (Agency::Nih, m(413), m(449)),
                (Agency::Noaa, m(98), m(108)),
                (Agency::Epa, m(50), m(80)),
                (Agency::Nist, m(21), m(41)),
            ],
        }
    }

    pub fn agencies(&self) -> impl Iterator<Item = Agency> + '_ {
        self.rows.iter().map(|(a, _, _)| *a)
    }

    /// One agency's budget in a fiscal year.
    pub fn budget(&self, agency: Agency, fy: FiscalYear) -> Money {
        let (_, a92, a93) = self
            .rows
            .iter()
            .find(|(a, _, _)| *a == agency)
            .expect("agency in table");
        match fy {
            FiscalYear::Fy1992 => *a92,
            FiscalYear::Fy1993 => *a93,
        }
    }

    /// Column total — must equal the exhibit's printed totals exactly.
    pub fn total(&self, fy: FiscalYear) -> Money {
        self.rows.iter().map(|(a, _, _)| self.budget(*a, fy)).sum()
    }

    /// Year-over-year growth for one agency, percent.
    pub fn growth_pct(&self, agency: Agency) -> f64 {
        let a = self.budget(agency, FiscalYear::Fy1992).0 as f64;
        let b = self.budget(agency, FiscalYear::Fy1993).0 as f64;
        (b - a) / a * 100.0
    }

    /// Program-wide growth, percent.
    pub fn total_growth_pct(&self) -> f64 {
        let a = self.total(FiscalYear::Fy1992).0 as f64;
        let b = self.total(FiscalYear::Fy1993).0 as f64;
        (b - a) / a * 100.0
    }

    /// Agency share of the crosscut, percent.
    pub fn share_pct(&self, agency: Agency, fy: FiscalYear) -> f64 {
        self.budget(agency, fy).0 as f64 / self.total(fy).0 as f64 * 100.0
    }

    /// Split an agency's budget across the four program components.
    ///
    /// **Reconstruction note.** The deck's pie figure (T4-3b) labels the
    /// four components but the NTRS scan carries no numerals, so the
    /// weights below are a documented estimate from the agencies' stated
    /// responsibilities (T4-2) and the FY93 Blue Book proportions. Each
    /// agency's weights are in percent and sum to 100; rounding residue
    /// goes to ASTA so column sums stay exact.
    pub fn component_weights(agency: Agency) -> [(Component, u32); 4] {
        use Component::*;
        match agency {
            Agency::Darpa => [(Hpcs, 50), (Asta, 15), (Nren, 20), (Brhr, 15)],
            Agency::Nsf => [(Hpcs, 10), (Asta, 35), (Nren, 25), (Brhr, 30)],
            Agency::Doe => [(Hpcs, 15), (Asta, 55), (Nren, 15), (Brhr, 15)],
            Agency::Nasa => [(Hpcs, 15), (Asta, 60), (Nren, 15), (Brhr, 10)],
            Agency::Nih => [(Hpcs, 5), (Asta, 50), (Nren, 15), (Brhr, 30)],
            Agency::Noaa => [(Hpcs, 0), (Asta, 80), (Nren, 20), (Brhr, 0)],
            Agency::Epa => [(Hpcs, 0), (Asta, 70), (Nren, 10), (Brhr, 20)],
            Agency::Nist => [(Hpcs, 30), (Asta, 30), (Nren, 40), (Brhr, 0)],
        }
    }

    /// Program-wide component split for a fiscal year. Sums exactly to
    /// the column total.
    pub fn component_split(&self, fy: FiscalYear) -> [(Component, Money); 4] {
        let mut totals = [0i64; 4];
        for (agency, _, _) in &self.rows {
            let budget = self.budget(*agency, fy).0;
            let weights = Self::component_weights(*agency);
            let mut assigned = 0i64;
            for (comp, w) in weights {
                if comp == Component::Asta {
                    continue; // ASTA absorbs the rounding residue below
                }
                let part = budget * w as i64 / 100;
                totals[comp_idx(comp)] += part;
                assigned += part;
            }
            // ASTA takes exactly what the other components left behind,
            // so column sums stay exact under integer division.
            totals[comp_idx(Component::Asta)] += budget - assigned;
        }
        [
            (Component::Hpcs, Money(totals[0])),
            (Component::Asta, Money(totals[1])),
            (Component::Nren, Money(totals[2])),
            (Component::Brhr, Money(totals[3])),
        ]
    }
}

fn comp_idx(c: Component) -> usize {
    match c {
        Component::Hpcs => 0,
        Component::Asta => 1,
        Component::Nren => 2,
        Component::Brhr => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FiscalYear::*;

    #[test]
    fn totals_match_the_exhibit_exactly() {
        let t = FundingTable::fy1992_93();
        assert_eq!(t.total(Fy1992), Money(6548)); // $654.8M
        assert_eq!(t.total(Fy1993), Money(8029)); // $802.9M
        assert_eq!(t.total(Fy1992).to_string(), "654.8");
        assert_eq!(t.total(Fy1993).to_string(), "802.9");
    }

    #[test]
    fn individual_rows_verbatim() {
        let t = FundingTable::fy1992_93();
        assert_eq!(t.budget(Agency::Darpa, Fy1992).to_string(), "232.2");
        assert_eq!(t.budget(Agency::Nsf, Fy1993).to_string(), "261.9");
        assert_eq!(t.budget(Agency::Nist, Fy1992).to_string(), "2.1");
        assert_eq!(t.budget(Agency::Epa, Fy1993).to_string(), "8.0");
    }

    #[test]
    fn program_grows_22_6_percent() {
        let t = FundingTable::fy1992_93();
        let g = t.total_growth_pct();
        assert!((g - 22.62).abs() < 0.02, "growth {g}%");
    }

    #[test]
    fn every_agency_grows() {
        let t = FundingTable::fy1992_93();
        for a in Agency::ALL {
            assert!(t.growth_pct(a) > 0.0, "{} shrank", a.label());
        }
    }

    #[test]
    fn darpa_and_nsf_dominate() {
        let t = FundingTable::fy1992_93();
        for fy in [Fy1992, Fy1993] {
            let share = t.share_pct(Agency::Darpa, fy) + t.share_pct(Agency::Nsf, fy);
            assert!(share > 60.0, "DARPA+NSF share {share}%");
        }
    }

    #[test]
    fn nist_has_largest_relative_growth() {
        let t = FundingTable::fy1992_93();
        let nist = t.growth_pct(Agency::Nist);
        for a in Agency::ALL {
            if a != Agency::Nist {
                assert!(nist > t.growth_pct(a), "{}", a.label());
            }
        }
        assert!((nist - 95.2).abs() < 0.3, "NIST growth {nist}%");
    }

    #[test]
    fn component_weights_sum_to_100() {
        for a in Agency::ALL {
            let total: u32 = FundingTable::component_weights(a)
                .iter()
                .map(|(_, w)| *w)
                .sum();
            assert_eq!(total, 100, "{}", a.label());
        }
    }

    #[test]
    fn component_split_sums_to_total() {
        let t = FundingTable::fy1992_93();
        for fy in [Fy1992, Fy1993] {
            let split = t.component_split(fy);
            let sum: Money = split.iter().map(|(_, m)| *m).sum();
            assert_eq!(sum, t.total(fy), "{fy:?}");
        }
    }

    #[test]
    fn asta_is_the_largest_component() {
        // The application-software component carries the Grand Challenge
        // money — it should lead the split.
        let t = FundingTable::fy1992_93();
        let split = t.component_split(Fy1993);
        let asta = split.iter().find(|(c, _)| *c == Component::Asta).unwrap().1;
        for (c, m) in split {
            if c != Component::Asta {
                assert!(asta > m, "{}", c.label());
            }
        }
    }

    #[test]
    fn money_formatting() {
        assert_eq!(Money(2322).to_string(), "232.2");
        assert_eq!(Money(50).to_string(), "5.0");
        assert_eq!(Money(8029).millions(), 802.9);
    }
}
