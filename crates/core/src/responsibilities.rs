//! Exhibit T4-2: the agency-responsibilities matrix (agencies × program
//! components → activities).
//!
//! The NTRS scan of this chart is heavily OCR-garbled; the entries below
//! are a cleaned reconstruction of the legible fragments (e.g.
//! "Technology devsfopmenl ... for glgablts ne_,_ks" → "Technology
//! development and coordination for gigabit networks"). The structure —
//! which agency appears in which column — follows the scan.

use crate::program::{Agency, Component};

/// One cell of the matrix: an agency's activities under one component.
pub fn activities(agency: Agency, component: Component) -> &'static [&'static str] {
    use Agency::*;
    use Component::*;
    match (agency, component) {
        (Darpa, Hpcs) => &["Technology development and coordination for teraops systems"],
        (Darpa, Asta) => &[
            "Technology development for parallel algorithms and software tools",
            "Software coordination",
        ],
        (Darpa, Nren) => &[
            "Technology development and coordination for gigabit networks",
            "Gigabits research",
        ],
        (Darpa, Brhr) => &["Basic research and education programs"],

        (Nsf, Hpcs) => &[
            "Basic architecture research",
            "Prototype experimental systems",
            "Research in systems instrumentation and performance measurement",
        ],
        (Nsf, Asta) => &[
            "Research in software tools and databases",
            "Grand Challenges computational research",
            "Computer access",
        ],
        (Nsf, Nren) => &[
            "Gigabits applications research",
            "Facilities coordination and deployment",
            "Gigabits research",
        ],
        (Nsf, Brhr) => &[
            "Basic research and education programs",
            "Research institutes and university block grants",
            "Education / training / curricula",
            "Infrastructure",
        ],

        (Doe, Hpcs) => &["Systems evaluation"],
        (Doe, Asta) => &[
            "Energy grand challenge and computation research",
            "Software tools",
        ],
        (Doe, Nren) => &[
            "Access to energy research facilities and databases",
            "Gigabits research",
        ],
        (Doe, Brhr) => &[
            "University programs",
            "Internships for parallel algorithm development",
        ],

        (Nasa, Hpcs) => &["Aeronautics and space application testbeds"],
        (Nasa, Asta) => &[
            "Computational research in aerosciences",
            "Computational research in earth and space sciences",
            "Software coordination",
        ],
        (Nasa, Nren) => &["Access to aeronautics and spaceflight research centers"],
        (Nasa, Brhr) => &["University programs", "Training and career development"],

        (Nih, Hpcs) => &[],
        (Nih, Asta) => &["Medical application testbeds for NIH/NLM medical computation research"],
        (Nih, Nren) => &["Access for academic medical centers"],
        (Nih, Brhr) => &["University programs", "Basic research"],

        (Noaa, Hpcs) => &[],
        (Noaa, Asta) => &[
            "Ocean and atmospheric computation research",
            "Software tools",
        ],
        (Noaa, Nren) => &[
            "Ocean and atmosphere mission facilities",
            "Access to environmental data bases",
        ],
        (Noaa, Brhr) => &[],

        (Epa, Hpcs) => &[],
        (Epa, Asta) => &[
            "Research in environmental computations, databases, and application testbeds",
            "Computational techniques",
        ],
        (Epa, Nren) => &[
            "Environmental mission networks supported by the states",
            "Development of intelligent gateways",
        ],
        (Epa, Brhr) => &["Technology transfer to states"],

        (Nist, Hpcs) => &["Research in interfaces and standards"],
        (Nist, Asta) => &[
            "Research in software indexing and exchange",
            "Scalable parallel algorithms",
        ],
        (Nist, Nren) => &[
            "Coordinate performance measurement and standards",
            "Programs in protocols and security",
        ],
        (Nist, Brhr) => &[],
    }
}

/// Agencies with at least one activity under `component`.
pub fn agencies_in(component: Component) -> Vec<Agency> {
    Agency::ALL
        .into_iter()
        .filter(|&a| !activities(a, component).is_empty())
        .collect()
}

/// Footnote on the exhibit.
pub const FOOTNOTE: &str = "Department of Education participation expected in FY 1993";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_agency_has_some_responsibility() {
        for a in Agency::ALL {
            let total: usize = Component::ALL.iter().map(|&c| activities(a, c).len()).sum();
            assert!(total > 0, "{} has no activities", a.label());
        }
    }

    #[test]
    fn every_component_has_multiple_agencies() {
        for c in Component::ALL {
            let n = agencies_in(c).len();
            assert!(n >= 3, "{} has only {n} agencies", c.label());
        }
    }

    #[test]
    fn asta_is_the_broadest_component() {
        // Every agency participates in the applications/software push.
        assert_eq!(agencies_in(Component::Asta).len(), Agency::ALL.len());
    }

    #[test]
    fn hpcs_is_led_by_darpa() {
        let hpcs = agencies_in(Component::Hpcs);
        assert!(hpcs.contains(&Agency::Darpa));
        // Mission agencies without systems programs stay out.
        assert!(!hpcs.contains(&Agency::Noaa));
        assert!(!hpcs.contains(&Agency::Epa));
    }

    #[test]
    fn darpa_owns_teraops_and_gigabits() {
        let t = activities(Agency::Darpa, Component::Hpcs).join(" ");
        assert!(t.contains("teraops"));
        let n = activities(Agency::Darpa, Component::Nren).join(" ");
        assert!(n.contains("gigabit"));
    }

    #[test]
    fn footnote_mentions_education() {
        assert!(FOOTNOTE.contains("Education"));
    }
}
