//! The program's milestone timeline — the events the deck narrates
//! (Presidential commitment, the HPCC Act, the Delta installation, the
//! NSFnet T3 upgrade) plus the published out-year goals the components
//! were funded to reach.

/// A dated program milestone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Milestone {
    /// Calendar year.
    pub year: u32,
    pub what: &'static str,
    /// Which thread of the story it belongs to.
    pub thread: Thread,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Thread {
    Policy,
    Machines,
    Networks,
    Applications,
}

/// Milestones in chronological order.
pub const MILESTONES: [Milestone; 12] = [
    Milestone {
        year: 1988,
        what: "NSFnet T1 backbone complete (1.5 Mb/s)",
        thread: Thread::Networks,
    },
    Milestone {
        year: 1989,
        what: "FCCSET reports propose a federal HPC initiative",
        thread: Thread::Policy,
    },
    Milestone {
        year: 1990,
        what: "Intel iPSC/860 ('Touchstone Gamma') ships",
        thread: Thread::Machines,
    },
    Milestone {
        year: 1991,
        what: "Presidential commitment (Caltech commencement speech)",
        thread: Thread::Policy,
    },
    Milestone {
        year: 1991,
        what: "High Performance Computing Act (P.L. 102-194) signed",
        thread: Thread::Policy,
    },
    Milestone {
        year: 1991,
        what: "Intel Touchstone Delta installed at Caltech: 528 processors, 32 GFLOPS peak",
        thread: Thread::Machines,
    },
    Milestone {
        year: 1991,
        what: "CASA gigabit testbed links Caltech/JPL/LANL/SDSC over HIPPI/SONET",
        thread: Thread::Networks,
    },
    Milestone {
        year: 1992,
        what: "NSFnet T3 backbone operational (45 Mb/s)",
        thread: Thread::Networks,
    },
    Milestone {
        year: 1992,
        what: "Delta LINPACK: 13 GFLOPS at order 25,000",
        thread: Thread::Machines,
    },
    Milestone {
        year: 1992,
        what: "Concurrent Supercomputer Consortium and CAS consortium operating",
        thread: Thread::Applications,
    },
    Milestone {
        year: 1992,
        what: "FY93 HPCC crosscut budget: $802.9M across 8 agencies",
        thread: Thread::Policy,
    },
    Milestone {
        year: 1993,
        what: "Intel Paragon XP/S (Delta's production successor) deliveries begin",
        thread: Thread::Machines,
    },
];

/// Milestones of one thread, chronological.
pub fn thread(t: Thread) -> Vec<Milestone> {
    MILESTONES
        .iter()
        .copied()
        .filter(|m| m.thread == t)
        .collect()
}

/// The program's stated out-year performance goals.
pub mod goals_1996 {
    /// HPCS: a sustained teraflops system.
    pub const TERAOPS_GOAL_GFLOPS: f64 = 1000.0;
    /// NREN: gigabit-per-second national research network.
    pub const NREN_GOAL_GBPS: f64 = 1.0;

    /// Factor still to go from the Delta's sustained LINPACK (13 GFLOPS).
    pub fn compute_gap_from_delta() -> f64 {
        TERAOPS_GOAL_GFLOPS / 13.0
    }

    /// Factor still to go from the NSFnet T3 backbone (45 Mb/s).
    pub fn network_gap_from_t3() -> f64 {
        NREN_GOAL_GBPS * 1e9 / 44.736e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chronological_and_nonempty() {
        assert!(MILESTONES.windows(2).all(|w| w[0].year <= w[1].year));
        for t in [
            Thread::Policy,
            Thread::Machines,
            Thread::Networks,
            Thread::Applications,
        ] {
            assert!(!thread(t).is_empty(), "{t:?}");
        }
    }

    #[test]
    fn act_and_delta_in_1991() {
        let y1991: Vec<_> = MILESTONES.iter().filter(|m| m.year == 1991).collect();
        assert!(y1991.iter().any(|m| m.what.contains("102-194")));
        assert!(y1991.iter().any(|m| m.what.contains("Delta")));
    }

    #[test]
    fn gaps_quantify_the_program_pitch() {
        // The deck's whole argument: ~77x to teraops, ~22x to gigabit.
        let cg = goals_1996::compute_gap_from_delta();
        assert!((cg - 76.9).abs() < 0.1, "compute gap {cg}");
        let ng = goals_1996::network_gap_from_t3();
        assert!((ng - 22.35).abs() < 0.1, "network gap {ng}");
    }
}
