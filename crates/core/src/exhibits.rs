//! The exhibit registry: every table and figure in the deck, what kind
//! of content it carries, and which module/binary of this repository
//! regenerates it. `hpcc-bench`'s `report` binary walks this registry.

/// What kind of content the exhibit carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhibitKind {
    /// Numeric table.
    Table,
    /// Figure / chart / network diagram.
    Figure,
    /// Bulleted prose (goals, approach, rosters).
    Narrative,
}

/// One exhibit of the deck.
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Our identifier (page-based, e.g. "T4-3a").
    pub id: &'static str,
    pub title: &'static str,
    pub kind: ExhibitKind,
    /// `report` subcommand that regenerates it.
    pub report_cmd: &'static str,
    /// Modules implementing the pieces.
    pub modules: &'static [&'static str],
    /// Bench covering it, if any: a Criterion group or a `report
    /// bench-*` command.
    pub bench: Option<&'static str>,
}

/// Every exhibit in the deck, in page order, plus the derived series
/// ("F-" ids) the evaluation harness sweeps.
pub fn registry() -> &'static [Exhibit] {
    &[
        Exhibit {
            id: "T4-1a",
            title: "Federal program goal and objectives",
            kind: ExhibitKind::Narrative,
            report_cmd: "goals",
            modules: &["hpcc_core::program::GOALS"],
            bench: None,
        },
        Exhibit {
            id: "T4-1b",
            title: "Presidential commitment (P.L. 102-194)",
            kind: ExhibitKind::Narrative,
            report_cmd: "goals",
            modules: &["hpcc_core::program::AUTHORITY"],
            bench: None,
        },
        Exhibit {
            id: "T4-2",
            title: "Federal HPCC program responsibilities (agency × component matrix)",
            kind: ExhibitKind::Figure,
            report_cmd: "responsibilities",
            modules: &["hpcc_core::responsibilities"],
            bench: Some("program_model"),
        },
        Exhibit {
            id: "T4-3a",
            title: "Federal HPCC program funding FY 92-93 (dollars in millions)",
            kind: ExhibitKind::Table,
            report_cmd: "funding",
            modules: &["hpcc_core::funding::FundingTable"],
            bench: Some("program_model"),
        },
        Exhibit {
            id: "T4-3b",
            title: "Funding by program component (HPCS/ASTA/NREN/BRHR)",
            kind: ExhibitKind::Figure,
            report_cmd: "components",
            modules: &["hpcc_core::funding::FundingTable::component_split"],
            bench: None,
        },
        Exhibit {
            id: "T4-3c",
            title: "Approach (testbeds, application software teams, technology transfer)",
            kind: ExhibitKind::Narrative,
            report_cmd: "goals",
            modules: &["hpcc_core::program::APPROACH"],
            bench: None,
        },
        Exhibit {
            id: "T4-4a",
            title: "Touchstone Delta: peak 32 GFLOPS from 528 numeric processors",
            kind: ExhibitKind::Table,
            report_cmd: "delta-peak",
            modules: &["delta_mesh::presets::delta_528"],
            bench: Some("sim_machines"),
        },
        Exhibit {
            id: "T4-4b",
            title: "Touchstone Delta: 13 GFLOPS LINPACK at order 25,000",
            kind: ExhibitKind::Table,
            report_cmd: "delta-linpack",
            modules: &["hpcc_kernels::sim::lu2d", "delta_mesh"],
            bench: Some("sim_linpack"),
        },
        Exhibit {
            id: "F-T4-4c",
            title: "LINPACK GFLOPS vs matrix order (derived sweep)",
            kind: ExhibitKind::Figure,
            report_cmd: "linpack-sweep",
            modules: &["hpcc_kernels::sim::lu2d"],
            bench: Some("sim_linpack"),
        },
        Exhibit {
            id: "F-T4-4d",
            title: "DARPA Touchstone series: iPSC/860 → Delta → Paragon",
            kind: ExhibitKind::Figure,
            report_cmd: "mpp-series",
            modules: &["delta_mesh::presets", "hpcc_kernels::sim::lu2d"],
            bench: Some("sim_machines"),
        },
        Exhibit {
            id: "T4-5a",
            title: "Delta Consortium partners network (6 link classes)",
            kind: ExhibitKind::Figure,
            report_cmd: "consortium-net",
            modules: &["nren_netsim::topologies::delta_consortium"],
            bench: Some("netsim"),
        },
        Exhibit {
            id: "F-T4-5b",
            title: "NREN backbone upgrade: T1 → T3 → gigabit (derived sweep)",
            kind: ExhibitKind::Figure,
            report_cmd: "nren-upgrade",
            modules: &["nren_netsim::topologies::nsfnet"],
            bench: Some("netsim"),
        },
        Exhibit {
            id: "T4-5c",
            title: "CASA HIPPI/SONET 800 Mb/s gigabit testbed",
            kind: ExhibitKind::Table,
            report_cmd: "casa",
            modules: &["nren_netsim::topologies::casa_testbed"],
            bench: Some("netsim"),
        },
        Exhibit {
            id: "T4-5d",
            title: "Concurrent Supercomputer Consortium membership",
            kind: ExhibitKind::Narrative,
            report_cmd: "consortium-net",
            modules: &["hpcc_core::consortium::CSC_MEMBERS"],
            bench: None,
        },
        Exhibit {
            id: "T4-6",
            title: "CAS consortium: purposes and private-sector participants",
            kind: ExhibitKind::Narrative,
            report_cmd: "cas",
            modules: &["hpcc_core::consortium", "hpcc_kernels::cfd"],
            bench: Some("kernels/cfd"),
        },
        Exhibit {
            id: "T4-4e",
            title: "'Acquire and utilize': space-sharing the Delta (FCFS vs backfill)",
            kind: ExhibitKind::Table,
            report_cmd: "scheduler",
            modules: &["delta_mesh::partition", "delta_mesh::sched"],
            bench: Some("ablations/scheduler"),
        },
        Exhibit {
            id: "AB-1",
            title: "Ablation: wormhole vs store-and-forward; broadcast algorithms",
            kind: ExhibitKind::Table,
            report_cmd: "ablations",
            modules: &["delta_mesh::machine::Switching", "delta_mesh::collective"],
            bench: Some("ablations"),
        },
        Exhibit {
            id: "RES-1",
            title: "Fault injection & recovery: Young's checkpoint optimum, scheduler \
                    crashes, WAN outages",
            kind: ExhibitKind::Table,
            report_cmd: "resilience",
            modules: &[
                "des::faults",
                "delta_mesh::sim",
                "delta_mesh::sched",
                "nren_netsim::flow",
                "hpcc_kernels::sim::lu2d",
            ],
            bench: Some("ablations/resilience"),
        },
        Exhibit {
            id: "SCHED-1",
            title: "Scheduler as a service: admission control, quotas, shed tiers, \
                    retry/backoff under overload and faults",
            kind: ExhibitKind::Table,
            report_cmd: "sched-service",
            modules: &[
                "delta_mesh::sched::service",
                "des::backoff",
                "delta_mesh::partition",
            ],
            bench: Some("bench-sched"),
        },
        Exhibit {
            id: "NET-1",
            title: "Incremental max-min flow engine: the T1->T3->gigabit upgrade story \
                    at modern tiers, and 1M concurrent flows on fat-tree/dragonfly \
                    fabrics",
            kind: ExhibitKind::Table,
            report_cmd: "bench-net",
            modules: &[
                "nren_netsim::engine",
                "nren_netsim::flow",
                "nren_netsim::topologies",
                "nren_netsim::workload",
            ],
            bench: Some("bench-net"),
        },
        Exhibit {
            id: "OBS-1",
            title: "End-to-end trace: faulted LU-2D, WAN staging, scheduler (Perfetto)",
            kind: ExhibitKind::Figure,
            report_cmd: "trace",
            modules: &[
                "hpcc_trace",
                "delta_mesh::sim",
                "delta_mesh::sched",
                "nren_netsim::flow",
                "hpcc_kernels::sim::lu2d",
            ],
            bench: None,
        },
        Exhibit {
            id: "OBS-2",
            title: "Live telemetry service: streaming recorder, Prometheus /metrics and \
                    Chrome-trace chunks over HTTP under concurrent scrapers",
            kind: ExhibitKind::Table,
            report_cmd: "telemetry",
            modules: &[
                "hpcc_trace::stream",
                "hpcc_trace::http",
                "delta_mesh::shard",
                "delta_mesh::sched",
                "nren_netsim::flow",
                "hpcc_kernels::sim::lu2d",
            ],
            bench: Some("telemetry"),
        },
        Exhibit {
            id: "GC-0",
            title: "ASTA kernel profile on the simulated Delta (who scales, who doesn't)",
            kind: ExhibitKind::Figure,
            report_cmd: "kernel-profile",
            modules: &["hpcc_kernels::sim"],
            bench: Some("simulator"),
        },
        Exhibit {
            id: "TL-1",
            title: "Program timeline and out-year gaps (teraops, gigabit)",
            kind: ExhibitKind::Narrative,
            report_cmd: "timeline",
            modules: &["hpcc_core::timeline"],
            bench: None,
        },
        Exhibit {
            id: "GC-1",
            title: "Grand Challenge kernels: host-parallel speedups (ASTA column)",
            kind: ExhibitKind::Figure,
            report_cmd: "grand-challenges",
            modules: &[
                "hpcc_kernels::cfd",
                "hpcc_kernels::shallow",
                "hpcc_kernels::nbody",
                "hpcc_kernels::fft",
                "hpcc_kernels::cg",
            ],
            bench: Some("kernels"),
        },
    ]
}

/// Find an exhibit by id.
pub fn by_id(id: &str) -> Option<&'static Exhibit> {
    registry().iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_deck_page() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        // One entry minimum per physical page T4-1..T4-6.
        for page in 1..=6 {
            let prefix = format!("T4-{page}");
            assert!(
                ids.iter().any(|i| i.contains(&prefix)),
                "page {prefix} uncovered"
            );
        }
    }

    #[test]
    fn ids_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), registry().len());
    }

    #[test]
    fn every_table_and_figure_has_a_report_command() {
        for e in registry() {
            assert!(!e.report_cmd.is_empty(), "{}", e.id);
            assert!(!e.modules.is_empty(), "{}", e.id);
        }
    }

    #[test]
    fn quantitative_exhibits_have_benches() {
        for e in registry() {
            if e.kind == ExhibitKind::Table {
                assert!(e.bench.is_some(), "table {} lacks a bench", e.id);
            }
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("T4-3a").is_some());
        assert!(by_id("nope").is_none());
        assert_eq!(by_id("T4-4b").unwrap().report_cmd, "delta-linpack");
    }
}
