//! Plain-text table rendering for the exhibit-regeneration harness —
//! the reports are meant to be laid side by side with the 1992 slides.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple monospace table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    /// Indices of rows to print after a separator (e.g. totals).
    footer_from: Option<usize>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: headers
                .iter()
                .enumerate()
                .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
                .collect(),
            rows: Vec::new(),
            footer_from: None,
        }
    }

    /// Override the default (first column left, rest right) alignment.
    pub fn aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Table {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Everything added after this call prints below a separator line.
    pub fn begin_footer(&mut self) -> &mut Table {
        self.footer_from = Some(self.rows.len());
        self
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|i| {
                    let c = &cells[i];
                    match self.aligns[i] {
                        Align::Left => format!(" {c:<width$} ", width = widths[i]),
                        Align::Right => format!(" {c:>width$} ", width = widths[i]),
                    }
                })
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{sep}")?;
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{sep}")?;
        for (i, row) in self.rows.iter().enumerate() {
            if self.footer_from == Some(i) {
                writeln!(f, "{sep}")?;
            }
            writeln!(f, "{}", fmt_row(row))?;
        }
        writeln!(f, "{sep}")
    }
}

/// Format a float with `d` decimals (report convenience).
pub fn fnum(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_rows_and_footer() {
        let mut t = Table::new("Demo", &["Name", "Value"]);
        t.row_strs(&["alpha", "1.0"]);
        t.row_strs(&["beta", "20.5"]);
        t.begin_footer();
        t.row_strs(&["Total", "21.5"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        // Footer separated: at least 4 separator lines (top, header, footer, bottom).
        assert!(s.matches("---").count() >= 4);
        // Right-aligned values share a column edge.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let c1 = lines[1].find("1.0").unwrap() + 3;
        let c2 = lines[2].find("20.5").unwrap() + 4;
        assert_eq!(c1, c2, "right alignment");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(13.0, 1), "13.0");
    }
}
