//! `hpcc-core` — the subject of the paper itself: the Federal High
//! Performance Computing and Communications Program, FY 1992–93.
//!
//! The reproduced paper (Holcomb, *High Performance Computing and
//! Communications Program*, 1992) is a programmatic overview, so the
//! "core contribution" is the program structure: eight agencies, four
//! components (HPCS / ASTA / NREN / BRHR), a $654.8M → $802.9M budget
//! crosscut, and two consortia around the Intel Touchstone Delta. This
//! crate types all of it and carries the [`exhibits`] registry that maps
//! every table and figure of the deck to the module and bench that
//! regenerates it.
//!
//! ```
//! use hpcc_core::{FundingTable, FiscalYear, Agency};
//!
//! let t = FundingTable::fy1992_93();
//! assert_eq!(t.total(FiscalYear::Fy1992).to_string(), "654.8");
//! assert!(t.share_pct(Agency::Darpa, FiscalYear::Fy1993) > 30.0);
//! ```

pub mod consortium;
pub mod exhibits;
pub mod funding;
pub mod program;
pub mod report;
pub mod responsibilities;
pub mod timeline;

pub use exhibits::{by_id, registry, Exhibit, ExhibitKind};
pub use funding::{FiscalYear, FundingTable, Money};
pub use program::{Agency, Component, APPROACH, AUTHORITY, GOALS};
pub use report::{fnum, Align, Table};
