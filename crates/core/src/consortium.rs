//! Exhibits T4-4/5/6: the Concurrent Supercomputer Consortium (the Delta
//! machine and its partners) and the Computational Aerosciences (CAS)
//! consortium.

/// Delta machine facts as the exhibit states them.
pub mod delta_facts {
    /// "PEAK SPEED OF 32 GFLOPS USING THE 528 NUMERIC PROCESSORS".
    pub const NUMERIC_PROCESSORS: usize = 528;
    /// Peak speed, GFLOPS.
    pub const PEAK_GFLOPS: f64 = 32.0;
    /// "13 GFLOPS SPEED OBTAINED ON A LINPAC BENCHMARK CODE".
    pub const LINPACK_GFLOPS: f64 = 13.0;
    /// "OF ORDER 25,000 BY 25,000".
    pub const LINPACK_ORDER: usize = 25_000;
    /// Where it lives.
    pub const SITE: &str = "Caltech";
}

/// A consortium member organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    pub name: &'static str,
    pub sector: Sector,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sector {
    Government,
    Industry,
    Academia,
}

/// Concurrent Supercomputer Consortium partners ("over 14 government,
/// industry and academia organizations" — the named ones from the figure
/// plus the member laboratories it wires in).
pub const CSC_MEMBERS: [Member; 14] = [
    Member {
        name: "California Institute of Technology",
        sector: Sector::Academia,
    },
    Member {
        name: "Intel Corporation (Supercomputer Systems Division)",
        sector: Sector::Industry,
    },
    Member {
        name: "DARPA",
        sector: Sector::Government,
    },
    Member {
        name: "National Science Foundation",
        sector: Sector::Government,
    },
    Member {
        name: "NASA",
        sector: Sector::Government,
    },
    Member {
        name: "Jet Propulsion Laboratory",
        sector: Sector::Government,
    },
    Member {
        name: "Center for Research on Parallel Computation (Rice University, lead institution)",
        sector: Sector::Academia,
    },
    Member {
        name: "Argonne National Laboratory",
        sector: Sector::Government,
    },
    Member {
        name: "Los Alamos National Laboratory",
        sector: Sector::Government,
    },
    Member {
        name: "San Diego Supercomputer Center",
        sector: Sector::Academia,
    },
    Member {
        name: "Purdue University",
        sector: Sector::Academia,
    },
    Member {
        name: "UC Davis",
        sector: Sector::Academia,
    },
    Member {
        name: "Pacific Northwest Laboratory",
        sector: Sector::Government,
    },
    Member {
        name: "Department of Energy",
        sector: Sector::Government,
    },
];

/// CAS consortium industry participants (exhibit T4-6, verbatim list,
/// spelling normalised).
pub const CAS_INDUSTRY: [&str; 12] = [
    "Boeing",
    "General Electric",
    "Grumman",
    "McDonnell Douglas",
    "Northrop",
    "Lockheed",
    "United Technologies",
    "TRW",
    "Rockwell",
    "General Motors",
    "General Dynamics",
    "Motorola",
];

/// CAS consortium academic participants.
pub const CAS_ACADEMIA: [&str; 4] = [
    "Syracuse University",
    "Mississippi State University",
    "USRA",
    "University of California, Davis",
];

/// The CAS consortium's stated purposes (exhibit T4-5b).
pub const CAS_PURPOSES: [&str; 5] = [
    "Develop a mechanism to allow aerospace industry to influence the requirements, \
     standards, and direction of NASA's Computational Aerosciences (CAS) project",
    "Provide a mechanism to allow industry to intellectually participate in the \
     development of selected generic CAS applications software and systems software base",
    "Facilitate the transfer of CAS technology to aerospace users",
    "Provide industry access to high performance computing resources",
    "Provide a mechanism to allow industry to commercialize appropriate products",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_facts_are_the_exhibits() {
        assert_eq!(delta_facts::NUMERIC_PROCESSORS, 528);
        assert_eq!(delta_facts::PEAK_GFLOPS, 32.0);
        assert_eq!(delta_facts::LINPACK_GFLOPS, 13.0);
        assert_eq!(delta_facts::LINPACK_ORDER, 25_000);
    }

    #[test]
    fn csc_has_over_14_members_across_sectors() {
        assert!(CSC_MEMBERS.len() >= 14);
        let gov = CSC_MEMBERS
            .iter()
            .filter(|m| m.sector == Sector::Government)
            .count();
        let ind = CSC_MEMBERS
            .iter()
            .filter(|m| m.sector == Sector::Industry)
            .count();
        let aca = CSC_MEMBERS
            .iter()
            .filter(|m| m.sector == Sector::Academia)
            .count();
        assert!(
            gov > 0 && ind > 0 && aca > 0,
            "gov={gov} ind={ind} aca={aca}"
        );
    }

    #[test]
    fn cas_rosters_match_exhibit_counts() {
        assert_eq!(CAS_INDUSTRY.len(), 12);
        assert_eq!(CAS_ACADEMIA.len(), 4);
        assert_eq!(CAS_PURPOSES.len(), 5);
        assert!(CAS_INDUSTRY.contains(&"Boeing"));
    }

    #[test]
    fn member_names_unique() {
        let mut names: Vec<_> = CSC_MEMBERS.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CSC_MEMBERS.len());
    }
}
