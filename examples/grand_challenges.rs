//! The ASTA column of exhibit T4-2: Grand Challenge kernels for each
//! mission agency, run for real on the host (sequential vs Rayon) with
//! their physics invariants checked as they go.
//!
//! Run with: `cargo run --release --example grand_challenges`

use hpcc_kernels::{cfd, cg, fft, nbody, shallow};
use std::time::Instant;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    println!("  {label:44} {:8.1} ms", t.elapsed().as_secs_f64() * 1e3);
    out
}

fn main() {
    println!("Grand Challenge kernels (the ASTA workloads), host execution:\n");

    // NASA: computational aerosciences — transport on a grid.
    println!("NASA / aerosciences — steady transport, 256^2 (to 1e-6):");
    let rhs = cfd::Grid::new(256);
    let sor_iters = timed("red-black SOR", || {
        let mut u = cfd::Grid::new(256);
        u.set_boundary(|x, y| x + y);
        cfd::sor(&mut u, &rhs, None, 1e-6, 100_000).iterations
    });
    let jac_iters = timed("Jacobi (Rayon rows)", || {
        let mut u = cfd::Grid::new(256);
        u.set_boundary(|x, y| x + y);
        cfd::jacobi(&mut u, &rhs, 1e-6, 1_000_000, true).iterations
    });
    println!("    SOR converged in {sor_iters} sweeps vs Jacobi {jac_iters} — algorithm beats hardware\n");

    // NOAA: ocean and atmosphere — shallow water equations.
    println!("NOAA / ocean-atmosphere — shallow water, 256^2, 120 steps:");
    let sw = timed("leapfrog + Asselin filter (Rayon)", || {
        let mut sw = shallow::Shallow::new(256);
        sw.run(120, true);
        sw
    });
    let drift = {
        let m0 = shallow::Shallow::new(256).total_mass();
        (sw.total_mass() - m0) / m0
    };
    println!("    mass conservation drift: {drift:.2e} (round-off only)\n");

    // Space sciences: N-body.
    println!("Space sciences — 4,000-body cluster, one force evaluation:");
    let bodies = nbody::random_cluster(4_000, 7);
    let exact = timed("direct O(n^2), Rayon", || {
        nbody::accel_direct_par(&bodies, 0.05)
    });
    let approx = timed("Barnes-Hut quadtree, theta=0.5", || {
        nbody::accel_barnes_hut(&bodies, 0.5, 0.05)
    });
    let mean: f64 = exact
        .iter()
        .map(|e| (e.0 * e.0 + e.1 * e.1).sqrt())
        .sum::<f64>()
        / exact.len() as f64;
    let worst = exact
        .iter()
        .zip(&approx)
        .map(|(e, a)| {
            ((e.0 - a.0).powi(2) + (e.1 - a.1).powi(2)).sqrt()
                / (e.0 * e.0 + e.1 * e.1).sqrt().max(0.1 * mean)
        })
        .fold(0.0f64, f64::max)
        * 100.0;
    println!("    worst force error {worst:.1}% — tree codes trade accuracy for O(n log n)\n");

    // Earth/space transforms.
    println!("Earth & space sciences — 1024^2 complex 2-D FFT:");
    let spectrum = timed("rows-transpose-rows (Rayon)", || {
        let n = 1024;
        let mut d: Vec<fft::Cpx> = (0..n * n)
            .map(|i| fft::Cpx::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        fft::fft2d(&mut d, n, true);
        d
    });
    println!(
        "    energy in spectrum: {:.3e} (Parseval-checked in the test suite)\n",
        spectrum.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / (1024.0 * 1024.0)
    );

    // DOE: energy research — sparse iterative solvers.
    println!("DOE / energy — Poisson 300^2 via conjugate gradient:");
    let res = timed("CG with Rayon SpMV", || {
        let a = cg::Csr::poisson2d(300);
        let b = vec![1.0; a.n()];
        let mut x = vec![0.0; a.n()];
        cg::cg(&a, &b, &mut x, 1e-10, 100_000, true)
    });
    println!(
        "    {} iterations to residual {:.1e} on a {}-unknown system",
        res.iterations,
        res.residual,
        300 * 300
    );
}
