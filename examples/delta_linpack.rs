//! The Concurrent Supercomputer Consortium exhibit, end to end:
//! verified distributed LU at small scale, then the paper-scale LINPACK
//! timing model at order 25,000 on the 528-node simulated Delta.
//!
//! Run with: `cargo run --release --example delta_linpack`

use hpcc::prelude::*;
use hpcc_kernels::sim::{lu1d, lu2d};

fn main() {
    // --- 1. Numerically verified distributed LU on a small Delta. --------
    // Real f64 columns move through the simulated mesh; node 0 solves and
    // checks the residual, LINPACK style.
    let small = Machine::new(presets::delta(2, 4));
    let v = lu1d::run(&small, 96, 8, 1992);
    println!(
        "verified run : n={:4} on {:3} nodes  residual {:.2e}  ({} LINPACK criterion)",
        v.n,
        v.nodes,
        v.residual,
        if v.residual < 16.0 { "PASSES" } else { "FAILS" },
    );
    assert!(v.residual < 16.0);

    // --- 2. The headline number. -----------------------------------------
    let delta = Machine::new(presets::delta_528());
    println!(
        "\nsimulating LINPACK at order 25,000 on {} ({} nodes)...",
        delta.config().name,
        delta.config().nodes()
    );
    let r = lu2d::run(&delta, 25_000, 32);
    println!(
        "model run    : {:.1} GFLOPS  ({:.0}% of the 32 GFLOPS peak), {:.0} s virtual",
        r.gflops,
        r.efficiency * 100.0,
        r.seconds
    );
    println!("paper claims : 13.0 GFLOPS (40.6% of peak)");

    // --- 3. The scaling story behind the number. --------------------------
    println!("\nefficiency vs matrix order (why bigger was better):");
    for n in [5_000, 10_000, 20_000, 25_000] {
        let r = lu2d::run(&delta, n, 32);
        let bar = "#".repeat((r.efficiency * 60.0) as usize);
        println!("  n={n:6}  {:5.1}%  {bar}", r.efficiency * 100.0);
    }
}
