//! "ACQUIRE AND UTILIZE THE INTEL TOUCHSTONE DELTA": space-sharing the
//! 16×33 mesh among the fourteen consortium partners — sub-mesh
//! allocation, FCFS vs backfill, and per-partner service statistics.
//!
//! Run with: `cargo run --release --example delta_scheduler`

use delta_mesh::sched::{consortium_workload, run, Policy};
use delta_mesh::MeshSpace;
use hpcc_core::consortium::CSC_MEMBERS;

fn main() {
    // --- The allocation problem in miniature. -----------------------------
    let mut space = MeshSpace::new(16, 33);
    println!("The Delta: {} nodes as a 16x33 mesh.", space.total_nodes());
    let a = space.allocate(8, 8, true).unwrap();
    let b = space.allocate(16, 16, true).unwrap();
    let c = space.allocate(4, 8, true).unwrap();
    println!(
        "three jobs placed at ({},{}), ({},{}), ({},{}); {} nodes still free",
        a.row,
        a.col,
        b.row,
        b.col,
        c.row,
        c.col,
        space.free_nodes()
    );
    let refused = space.allocate(16, 33, true).is_none();
    println!(
        "a full-machine request is {} — fragmentation in action\n",
        if refused { "refused" } else { "granted" }
    );

    // --- A week of consortium load. ----------------------------------------
    let jobs = consortium_workload(600, CSC_MEMBERS.len(), 90.0, 7);
    println!(
        "simulating {} jobs from {} partners (Poisson arrivals, heavy-tailed runtimes):\n",
        jobs.len(),
        CSC_MEMBERS.len()
    );
    println!(
        "{:10} {:>8} {:>12} {:>12} {:>10}",
        "policy", "util %", "mean wait", "max wait", "makespan"
    );
    for policy in [Policy::Fcfs, Policy::Backfill] {
        let r = run(16, 33, jobs.clone(), policy);
        println!(
            "{:10} {:>8.1} {:>9.0} min {:>9.0} min {:>8.1} h",
            format!("{policy:?}"),
            r.utilization * 100.0,
            r.mean_wait.as_secs_f64() / 60.0,
            r.max_wait.as_secs_f64() / 60.0,
            r.makespan.as_secs_f64() / 3600.0
        );
    }

    // --- Who got what (backfill run). --------------------------------------
    let r = run(16, 33, jobs, Policy::Backfill);
    let mut per_partner = vec![(0usize, 0.0f64); CSC_MEMBERS.len()];
    for rec in &r.records {
        per_partner[rec.job.partner].0 += 1;
        per_partner[rec.job.partner].1 +=
            rec.job.nodes() as f64 * rec.job.runtime.as_secs_f64() / 3600.0;
    }
    println!("\nnode-hours delivered per partner (backfill):");
    let mut rows: Vec<_> = CSC_MEMBERS.iter().zip(&per_partner).collect();
    rows.sort_by(|a, b| b.1 .1.total_cmp(&a.1 .1));
    for (member, (jobs, node_hours)) in rows.iter().take(6) {
        let name: String = member.name.chars().take(44).collect();
        println!("  {name:44} {jobs:4} jobs {node_hours:9.0} node-h");
    }
    println!(
        "\n'over 14 government, industry and academia organizations' — all of\nthem behind one {}-node machine. Hence the scheduler.",
        16 * 33
    );
}
