//! The CAS consortium scenario (exhibits T4-5b/6): an aerospace partner
//! runs a CFD job on the Delta — stage the input deck over the
//! consortium network, run the halo-exchange solver on the simulated
//! 528-node machine, retrieve the result field, and check whether remote
//! visualisation is feasible from that partner's seat.
//!
//! Run with: `cargo run --release --example cas_cfd`

use hpcc::prelude::*;
use hpcc_kernels::sim::stencil;
use nren_netsim::workload;

fn main() {
    println!("CAS consortium members:");
    println!(
        "  industry: {}",
        hpcc_core::consortium::CAS_INDUSTRY.join(", ")
    );
    println!(
        "  academia: {}\n",
        hpcc_core::consortium::CAS_ACADEMIA.join(", ")
    );

    let net = topologies::delta_consortium();
    let delta_site = net.site(topologies::DELTA_SITE).unwrap();
    let sim = FlowSim::new(&net);

    // Boeing works through NASA Ames' T1 attachment in this scenario.
    let seat = net.site("NASA Ames").unwrap();
    let grid = 2048usize;
    let field_bytes = (grid * grid * 8) as u64; // one double per point

    // --- 1. Stage the input deck. -----------------------------------------
    let stage = sim
        .single_flow_time(&TransferSpec::new(
            seat,
            delta_site,
            field_bytes,
            SimTime::ZERO,
        ))
        .unwrap();
    println!(
        "stage {}^2 field ({} MB) from NASA Ames over T1: {:.1} min",
        grid,
        field_bytes >> 20,
        stage.as_secs_f64() / 60.0
    );

    // --- 2. Run the solver on the simulated Delta. -------------------------
    let delta = Machine::new(presets::delta_528());
    let sweeps = 200;
    let r = stencil::run_model(&delta, grid, sweeps);
    println!(
        "run {sweeps} sweeps on {} nodes ({}x{} decomposition): {:.2} s virtual, {:.2} GFLOPS",
        delta.config().nodes(),
        r.grid.0,
        r.grid.1,
        r.seconds,
        r.gflops
    );

    // --- 3. Retrieve the result. -------------------------------------------
    let retrieve = sim
        .single_flow_time(&TransferSpec::new(
            delta_site,
            seat,
            field_bytes,
            SimTime::ZERO,
        ))
        .unwrap();
    println!(
        "retrieve result field: {:.1} min",
        retrieve.as_secs_f64() / 60.0
    );
    let total = stage.as_secs_f64() + r.seconds + retrieve.as_secs_f64();
    let network_share = (stage.as_secs_f64() + retrieve.as_secs_f64()) / total * 100.0;
    println!(
        "\nend-to-end: {:.1} min — {network_share:.0}% of it is the network.",
        total / 60.0
    );

    // --- 4. Could they watch it live instead? ------------------------------
    println!("\nremote visualisation feasibility (1 MB frames, 24 fps):");
    for name in ["JPL", "NASA Ames", "Purdue"] {
        let viewer = net.site(name).unwrap();
        let (req, ach, ok) =
            workload::visualization_feasibility(&net, delta_site, viewer, 1 << 20, 24.0);
        println!(
            "  {name:12} needs {:6.1} MB/s, link gives {:8.3} MB/s -> {}",
            req / 1e6,
            ach / 1e6,
            if ok { "FEASIBLE (HIPPI)" } else { "infeasible" }
        );
    }
    println!("\n  -> exactly the split the deck sells: HIPPI sites interact, T1 sites batch.");
}
