//! Quickstart: the whole reproduction in one minute.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Walks one layer at a time: the program model (the paper's tables), the
//! simulated Touchstone Delta (the paper's machine), and the consortium
//! network (the paper's connectivity figure).

use hpcc::prelude::*;

fn main() {
    // --- 1. The program the paper describes. -----------------------------
    let funding = FundingTable::fy1992_93();
    println!("The Federal HPCC Program, FY92-93:");
    println!(
        "  total budget {} -> {} $M ({:+.1}%)",
        funding.total(FiscalYear::Fy1992),
        funding.total(FiscalYear::Fy1993),
        funding.total_growth_pct()
    );
    for goal in hpcc_core::GOALS {
        println!("  goal: {goal}");
    }

    // --- 2. The machine the consortium bought. ---------------------------
    let delta = Machine::new(presets::delta_528());
    println!(
        "\nTouchstone Delta: {} nodes, peak {:.1} GFLOPS (paper says 32)",
        delta.config().nodes(),
        delta.config().peak_flops() / 1e9
    );

    // Run a real message-passing program on all 528 simulated nodes:
    // a global sum, then a 1 MFLOP dgemm burst per node.
    let (sums, report) = delta.run(|node| async move {
        let comm = Comm::world(&node);
        node.compute(Kernel::Dgemm, 1.0e6).await;
        comm.allreduce_sum(&[node.rank() as f64]).await[0]
    });
    let expect = (527 * 528 / 2) as f64;
    assert!(sums.iter().all(|&s| s == expect));
    println!(
        "  528-node allreduce agreed on {} in {} of virtual time ({} messages)",
        expect, report.elapsed, report.messages
    );

    // --- 3. The network that reaches it. ---------------------------------
    let net = topologies::delta_consortium();
    let delta_site = net.site(topologies::DELTA_SITE).unwrap();
    let sim = FlowSim::new(&net);
    for name in ["JPL", "Rice (CRPC)", "Purdue"] {
        let site = net.site(name).unwrap();
        let t = sim
            .single_flow_time(&TransferSpec::new(
                site,
                delta_site,
                10 << 20,
                SimTime::ZERO,
            ))
            .unwrap();
        println!("  staging 10 MB from {name:12} takes {t}");
    }
    println!("\nEverything above ran deterministically — same output every time.");
}
