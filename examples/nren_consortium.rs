//! The NREN story: partners reaching the Delta over 1992's networks, the
//! T1 → T3 → gigabit upgrade, and why TCP windows made "gigabit" a
//! research program (exhibits T4-5a/b/c).
//!
//! Run with: `cargo run --release --example nren_consortium`

use hpcc::prelude::*;
use nren_netsim::workload;

fn main() {
    let net = topologies::delta_consortium();
    let delta = net.site(topologies::DELTA_SITE).unwrap();
    let sim = FlowSim::new(&net);

    // --- Per-partner access (the topology figure, as numbers). -----------
    println!("Delta Consortium: time to stage a 100 MB input deck to Caltech\n");
    let mut rows: Vec<(String, f64)> = topologies::partner_sites(&net)
        .into_iter()
        .map(|p| {
            let t = sim
                .single_flow_time(&TransferSpec::new(p, delta, 100 << 20, SimTime::ZERO))
                .unwrap()
                .as_secs_f64();
            (net.name(p).to_string(), t)
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, secs) in &rows {
        let human = if *secs < 60.0 {
            format!("{secs:.1} s")
        } else if *secs < 3600.0 {
            format!("{:.1} min", secs / 60.0)
        } else {
            format!("{:.1} h", secs / 3600.0)
        };
        println!("  {name:24} {human:>10}");
    }
    println!(
        "\n  fastest/slowest ratio: {:.0}x — the figure's six link classes, quantified",
        rows.last().unwrap().1 / rows[0].1
    );

    // --- Everyone at once: fair sharing on the backbone. -----------------
    let partners = topologies::partner_sites(&net);
    let (staging, _) = workload::stage_and_retrieve(&partners, delta, 100 << 20, 0);
    let recs = sim.run(staging);
    let makespan = recs.iter().map(|r| r.finished).max().unwrap();
    println!(
        "\nConcurrent staging from all {} partners: makespan {}",
        partners.len(),
        makespan
    );

    // --- The TCP window lesson on the CASA gigabit testbed. --------------
    let casa = topologies::casa_testbed();
    let cal = casa.site(topologies::DELTA_SITE).unwrap();
    let lanl = casa.site("Los Alamos").unwrap();
    let csim = FlowSim::new(&casa);
    println!("\nCASA HIPPI/SONET (800 Mb/s), Caltech -> Los Alamos, 1 GB field:");
    for w in [Some(64 << 10), Some(1 << 20), Some(8 << 20), None] {
        let mut spec = TransferSpec::new(cal, lanl, 1 << 30, SimTime::ZERO);
        if let Some(w) = w {
            spec = spec.with_window(w);
        }
        let t = csim.single_flow_time(&spec).unwrap().as_secs_f64();
        let label = w.map_or("no window cap".to_string(), |w| {
            format!("{:4} KB window", w >> 10)
        });
        println!(
            "  {label:16} {:7.1} MB/s  ({t:.1} s)",
            (1u64 << 30) as f64 / t / 1e6
        );
    }
    println!("\n  -> the pipe is there; 1992 protocols can't fill it. Hence NREN's");
    println!("     'programs in protocols and security' line in exhibit T4-2.");
}
