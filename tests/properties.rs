//! Property-based tests (proptest) over the core invariants promised in
//! DESIGN.md: solver correctness, transform identities, conservation
//! laws, fairness axioms, and routing legality.

use delta_mesh::Topology;
use hpcc_kernels::cfd;
use hpcc_kernels::cg::{cg, Csr};
use hpcc_kernels::fft::{fft, ifft, Cpx};
use hpcc_kernels::lu::{lu_factor, lu_solve};
use hpcc_kernels::mat::Mat;
use hpcc_kernels::nbody;
use hpcc_kernels::shallow::Shallow;
use nren_netsim::{maxmin_rates, Net};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LU with partial pivoting solves every diagonally dominant system
    /// to near machine precision, at any block size.
    #[test]
    fn lu_solves_spd_systems(seed in 0u64..1000, n in 2usize..40, nb in 1usize..12) {
        let mut rng = des::rng::Rng::new(seed);
        let a = Mat::random_spd(n, &mut rng);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&xtrue);
        let mut f = a.clone();
        let piv = lu_factor(&mut f, nb).unwrap();
        let x = lu_solve(&f, &piv, &b);
        let err = x.iter().zip(&xtrue).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-8, "err {err}");
    }

    /// Blocked and unblocked LU produce identical pivots and factors.
    #[test]
    fn lu_block_size_invariance(seed in 0u64..500, n in 2usize..32) {
        let mut rng = des::rng::Rng::new(seed);
        let a = Mat::random(n, n, &mut rng);
        let mut f1 = a.clone();
        let mut f2 = a.clone();
        let (p1, p2) = (lu_factor(&mut f1, 1), lu_factor(&mut f2, 7));
        prop_assert_eq!(p1.is_ok(), p2.is_ok());
        if let (Ok(p1), Ok(p2)) = (p1, p2) {
            prop_assert_eq!(p1, p2);
            prop_assert!(f1.dist(&f2) < 1e-9);
        }
    }

    /// FFT∘IFFT is the identity for any power-of-two length and data.
    #[test]
    fn fft_roundtrip(logn in 1u32..10, seed in 0u64..1000) {
        let n = 1usize << logn;
        let mut rng = des::rng::Rng::new(seed);
        let orig: Vec<Cpx> = (0..n)
            .map(|_| Cpx::new(rng.range_f64(-5.0, 5.0), rng.range_f64(-5.0, 5.0)))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    /// Parseval: the transform preserves energy (up to 1/n).
    #[test]
    fn fft_parseval(logn in 1u32..10, seed in 0u64..1000) {
        let n = 1usize << logn;
        let mut rng = des::rng::Rng::new(seed);
        let x: Vec<Cpx> = (0..n)
            .map(|_| Cpx::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        let te: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let mut f = x;
        fft(&mut f);
        let fe: f64 = f.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() <= 1e-9 * te.max(1.0));
    }

    /// Shallow water conserves total mass for any grid size and horizon.
    #[test]
    fn shallow_mass_conservation(m in 4usize..40, steps in 1usize..60) {
        let mut sw = Shallow::new(m);
        let m0 = sw.total_mass();
        sw.run(steps, false);
        let drift = ((sw.total_mass() - m0) / m0).abs();
        prop_assert!(drift < 1e-11, "drift {drift}");
    }

    /// Direct N-body conserves momentum over any short run.
    #[test]
    fn nbody_momentum_conserved(n in 2usize..60, seed in 0u64..500, steps in 1usize..10) {
        let mut bodies = nbody::random_cluster(n, seed);
        let (px0, py0) = nbody::momentum(&bodies);
        for _ in 0..steps {
            nbody::step(&mut bodies, 1e-3, 0.05, nbody::Forces::Direct);
        }
        let (px1, py1) = nbody::momentum(&bodies);
        prop_assert!((px1 - px0).abs() < 1e-10 && (py1 - py0).abs() < 1e-10);
    }

    /// CG agrees with LU on arbitrary SPD systems.
    #[test]
    fn cg_matches_lu(seed in 0u64..300, n in 2usize..25) {
        let mut rng = des::rng::Rng::new(seed);
        let a_dense = Mat::random_spd(n, &mut rng);
        let triplets: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j, 0.0)))
            .map(|(i, j, _)| (i, j, a_dense[(i, j)]))
            .collect();
        let a_sparse = Csr::from_triplets(n, &triplets);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();

        let mut f = a_dense.clone();
        let piv = lu_factor(&mut f, 4).unwrap();
        let x_lu = lu_solve(&f, &piv, &b);

        let mut x_cg = vec![0.0; n];
        let res = cg(&a_sparse, &b, &mut x_cg, 1e-13, 10_000, false);
        prop_assert!(res.converged);
        for (p, q) in x_cg.iter().zip(&x_lu) {
            prop_assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    /// Jacobi and SOR agree on the solution of random Poisson problems.
    #[test]
    fn jacobi_sor_same_fixed_point(n in 4usize..16, seed in 0u64..200) {
        let mut rng = des::rng::Rng::new(seed);
        let mut rhs = cfd::Grid::new(n);
        for i in 1..=n {
            for j in 1..=n {
                rhs.set(i, j, rng.range_f64(-10.0, 10.0));
            }
        }
        let mut uj = cfd::Grid::new(n);
        let mut us = cfd::Grid::new(n);
        let cj = cfd::jacobi(&mut uj, &rhs, 1e-11, 200_000, false);
        let cs = cfd::sor(&mut us, &rhs, None, 1e-12, 200_000);
        prop_assert!(cj.converged && cs.converged);
        prop_assert!(uj.dist(&us) < 1e-6, "dist {}", uj.dist(&us));
    }

    /// Mesh/hypercube routing: the deterministic route always has
    /// hop-count length, stays within the link table, and never repeats
    /// a channel.
    #[test]
    fn routing_legality(rows in 1usize..8, cols in 1usize..8, a in 0usize..64, b in 0usize..64) {
        let topo = Topology::Mesh2D { rows, cols };
        let n = topo.nodes();
        let (a, b) = (a % n, b % n);
        let mut route = Vec::new();
        topo.route(a, b, &mut route);
        prop_assert_eq!(route.len(), topo.hops(a, b));
        let mut seen = std::collections::HashSet::new();
        for &l in &route {
            prop_assert!(l < topo.links());
            prop_assert!(seen.insert(l), "repeated channel");
        }
    }

    /// Max-min fairness axioms on random dumbbell-ish topologies:
    /// no link oversubscribed, no cap exceeded, and every flow is either
    /// capped or crosses a saturated link (Pareto optimality).
    #[test]
    fn maxmin_axioms(seed in 0u64..400, nflows in 1usize..12) {
        let mut rng = des::rng::Rng::new(seed);
        let mut net = Net::new();
        let sites: Vec<_> = (0..6).map(|i| net.add_site(format!("s{i}"))).collect();
        // A random connected chain plus chords.
        for w in sites.windows(2) {
            net.add_link(w[0], w[1], nren_netsim::LinkClass::T1, des::time::Dur::from_millis(5));
        }
        net.add_link(sites[0], sites[3], nren_netsim::LinkClass::T3, des::time::Dur::from_millis(8));
        net.add_link(sites[2], sites[5], nren_netsim::LinkClass::Ethernet10, des::time::Dur::from_millis(3));

        let routes: Vec<Vec<usize>> = (0..nflows)
            .map(|_| {
                let a = rng.below(6) as usize;
                let mut b = rng.below(6) as usize;
                while b == a { b = rng.below(6) as usize; }
                net.route(a, b).unwrap().dirs
            })
            .collect();
        let caps: Vec<f64> = (0..nflows)
            .map(|_| if rng.chance(0.3) { rng.range_f64(1e3, 1e6) } else { f64::INFINITY })
            .collect();
        let flows: Vec<(&[usize], f64)> = routes.iter().zip(&caps)
            .map(|(r, &c)| (r.as_slice(), c)).collect();
        let rates = maxmin_rates(&net, &flows);

        // Axiom 1: caps respected.
        for (r, c) in rates.iter().zip(&caps) {
            prop_assert!(*r <= c * 1.0001, "rate {r} > cap {c}");
            prop_assert!(*r > 0.0);
        }
        // Axiom 2: no directed link oversubscribed.
        for d in 0..net.dir_links() {
            let used: f64 = rates.iter().zip(&routes)
                .filter(|(_, route)| route.contains(&d))
                .map(|(r, _)| *r)
                .sum();
            prop_assert!(used <= net.capacity(d) * 1.0001, "link {d} over");
        }
        // Axiom 3 (Pareto): every flow is capped or bottlenecked.
        for (i, route) in routes.iter().enumerate() {
            let capped = rates[i] >= caps[i] * 0.999;
            let bottlenecked = route.iter().any(|&d| {
                let used: f64 = rates.iter().zip(&routes)
                    .filter(|(_, rt)| rt.contains(&d))
                    .map(|(r, _)| *r)
                    .sum();
                used >= net.capacity(d) * 0.999
            });
            prop_assert!(capped || bottlenecked, "flow {i} could grow");
        }
    }

    /// Funding arithmetic: any rescaling of the table keeps shares
    /// summing to 100% and growth consistent.
    #[test]
    fn funding_shares_sum(fy_sel in 0u8..2) {
        use hpcc_core::{Agency, FiscalYear, FundingTable};
        let fy = if fy_sel == 0 { FiscalYear::Fy1992 } else { FiscalYear::Fy1993 };
        let t = FundingTable::fy1992_93();
        let total: f64 = Agency::ALL.iter().map(|&a| t.share_pct(a, fy)).sum();
        prop_assert!((total - 100.0).abs() < 1e-9);
    }

    /// deterministic RNG streams never collide across seeds (smoke).
    #[test]
    fn rng_seed_separation(a in 0u64..5000, b in 0u64..5000) {
        prop_assume!(a != b);
        let mut ra = des::rng::Rng::new(a);
        let mut rb = des::rng::Rng::new(b);
        let same = (0..16).filter(|_| ra.next_u64() == rb.next_u64()).count();
        prop_assert!(same < 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The packed register-blocked GEMM engine agrees with the naive
    /// triple loop on arbitrary shapes — including dims that are not
    /// multiples of the MR/NR/KC tile parameters, degenerate 1×N / N×1
    /// strips, and empty matrices (the ranges start at 0).
    #[test]
    fn gemm_matches_naive_oracle(
        seed in 0u64..1000,
        m in 0usize..36,
        k in 0usize..280,
        n in 0usize..36,
    ) {
        use hpcc_kernels::gemm::{gemm, gemm_par};
        use hpcc_kernels::matmul::matmul_naive;
        let mut rng = des::rng::Rng::new(seed);
        let a = Mat::random(m, k, &mut rng);
        let b = Mat::random(k, n, &mut rng);
        let want = matmul_naive(&a, &b);
        let got = gemm(&a, &b);
        prop_assert!(want.dist(&got) < 1e-9, "seq m={m} k={k} n={n}: {}", want.dist(&got));
        let got_par = gemm_par(&a, &b);
        prop_assert_eq!(got, got_par, "parallel engine must be bit-identical");
    }

    /// LU through the GEMM-engine trailing update stays backward stable:
    /// ‖PA − LU‖/‖A‖ stays at roundoff across block sizes, for the
    /// sequential and the Rayon path alike.
    #[test]
    fn lu_residual_small_all_block_sizes(
        seed in 0u64..500,
        n in 1usize..64,
        nb in 1usize..24,
        par_sel in 0u8..2,
    ) {
        use hpcc_kernels::lu::{lu_factor_par, lu_reconstruct};
        let par = par_sel == 1;
        let mut rng = des::rng::Rng::new(seed);
        let a = Mat::random(n, n, &mut rng);
        let mut f = a.clone();
        let piv = if par {
            lu_factor_par(&mut f, nb)
        } else {
            lu_factor(&mut f, nb)
        };
        let piv = match piv {
            Ok(p) => p,
            Err(_) => return Err(proptest::TestCaseRejection), // singular draw
        };
        let mut pa = a.clone();
        for (j, &p) in piv.iter().enumerate() {
            pa.swap_rows(j, p);
        }
        let rec = lu_reconstruct(&f);
        let rel = pa.dist(&rec) / pa.inf_norm().max(1e-300);
        prop_assert!(rel < 1e-10, "n={n} nb={nb} par={par} rel residual {rel}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded fault plan replays bit-identically: same seed, same
    /// model, same horizon -> the identical event list, and running a
    /// mesh program under it twice gives the identical trace.
    #[test]
    fn fault_plans_replay_bit_identically(
        seed in 0u64..10_000,
        node_mtbf_s in 1u64..5_000,
        link_mtbf_s in 1u64..5_000,
        horizon_s in 1u64..2_000,
    ) {
        use delta_mesh::{FaultPlan, MtbfModel};
        use des::time::Dur;

        let model = MtbfModel {
            node_mtbf: Some(Dur::from_secs(node_mtbf_s)),
            link_mtbf: Some(Dur::from_secs(link_mtbf_s)),
            link_repair: Dur::from_secs(5),
            ..MtbfModel::none()
        };
        let mk = || FaultPlan::seeded(seed, &model, 12, 17, Dur::from_secs(horizon_s));
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(a.events() == b.events(), "event lists diverged");
        prop_assert!(
            a.events().windows(2).all(|w| w[0].at <= w[1].at),
            "events not time-ordered"
        );

        // A different seed must not replay the same non-empty plan.
        if !a.is_empty() {
            let c = FaultPlan::seeded(seed ^ 0x5eed, &model, 12, 17, Dur::from_secs(horizon_s));
            prop_assert!(a.events() != c.events() || c.is_empty());
        }
    }

    /// Running a mesh program under the same fault plan twice produces
    /// the identical report — faults do not break determinism.
    #[test]
    fn faulted_mesh_runs_replay_bit_identically(seed in 0u64..2_000) {
        use delta_mesh::{presets, FaultPlan, Machine, MtbfModel};
        use des::time::Dur;

        let model = MtbfModel::node_crashes(Dur::from_secs(2));
        let plan = FaultPlan::seeded(seed, &model, 6, 7, Dur::from_secs(30));
        let m = Machine::new(presets::delta(2, 3));
        let go = || {
            m.run_with_faults(&plan, |node| async move {
                let mut acc = node.rank() as u64;
                for round in 0..20u64 {
                    let peer = (node.rank() + 1) % node.nranks();
                    let _ = node.try_send(peer, round, delta_mesh::Payload::Virtual(64)).await;
                    if let Ok(msg) = node
                        .recv_timeout(None, Some(round), Dur::from_millis(50))
                        .await
                    {
                        acc = acc.wrapping_add(msg.src as u64);
                    }
                    node.compute(delta_mesh::Kernel::Daxpy, 1.0e5).await;
                }
                acc
            })
        };
        let (ra, pa) = go();
        let (rb, pb) = go();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(pa.elapsed, pb.elapsed);
        prop_assert_eq!(pa.events, pb.events);
        prop_assert_eq!(pa.faults, pb.faults);
    }
}
