//! Integration tests: every quantitative exhibit's *shape* claims, as
//! promised in DESIGN.md. These are the assertions EXPERIMENTS.md cites.

use delta_mesh::{presets, Machine};
use hpcc_core::{Agency, FiscalYear, FundingTable};
use hpcc_kernels::sim::lu2d;
use nren_netsim::{topologies, FlowSim, LinkClass, TransferSpec};

use des::time::SimTime;

/// T4-4a: the Delta's peak is the paper's 32 GFLOPS, derived from the
/// node model, and the order-25,000 matrix fits in modelled memory.
#[test]
fn t4_4a_delta_peak_and_memory() {
    let m = presets::delta_528();
    assert_eq!(m.nodes(), 528);
    assert!((m.peak_flops() / 1e9 - 32.0).abs() < 1e-9);
    assert!(m.max_linpack_order() >= 25_000);
}

/// T4-4b (scaled-down proxy): LINPACK efficiency on the full 528-node
/// Delta at a mid-range order sits in the right band, and the paper-scale
/// point is covered by `full_scale_linpack` below (ignored by default).
#[test]
fn t4_4b_linpack_efficiency_band() {
    let machine = Machine::new(presets::delta_528());
    let r = lu2d::run(&machine, 8_000, 32);
    assert!(
        r.efficiency > 0.15 && r.efficiency < 0.45,
        "efficiency {} out of band",
        r.efficiency
    );
}

/// T4-4b at full scale: 25,000×25,000 on 528 nodes must land within
/// ±25% of the paper's 13 GFLOPS. ~30 s optimised; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run (~30 s optimised); exercised by `report delta-linpack`"]
fn full_scale_linpack_lands_near_13_gflops() {
    let machine = Machine::new(presets::delta_528());
    let r = lu2d::run(&machine, 25_000, 32);
    assert!(
        (9.75..=16.25).contains(&r.gflops),
        "simulated {} GFLOPS vs paper 13.0",
        r.gflops
    );
    assert!(r.efficiency > 0.30 && r.efficiency < 0.51);
}

/// F-T4-4c: efficiency rises monotonically with matrix order.
#[test]
fn f_t4_4c_efficiency_monotone_in_order() {
    let machine = Machine::new(presets::delta(8, 8));
    let mut last = 0.0;
    for n in [1_000, 2_000, 4_000, 8_000] {
        let r = lu2d::run(&machine, n, 32);
        assert!(r.efficiency > last, "n={n}: {} !> {last}", r.efficiency);
        last = r.efficiency;
    }
}

/// F-T4-4d: the DARPA series ordering — each generation beats the last
/// at the same node count and problem size; none beats the ideal bound.
#[test]
fn f_t4_4d_touchstone_series_ordering() {
    let n = 4_000;
    let gamma = lu2d::run(&Machine::new(presets::ipsc860(6)), n, 32);
    let delta = lu2d::run(&Machine::new(presets::delta(8, 8)), n, 32);
    let paragon = lu2d::run(&Machine::new(presets::paragon(8, 8)), n, 32);
    let ideal = lu2d::run(&Machine::new(presets::ideal(64)), n, 32);
    assert!(
        gamma.gflops < delta.gflops,
        "Gamma {} !< Delta {}",
        gamma.gflops,
        delta.gflops
    );
    assert!(
        delta.gflops < paragon.gflops,
        "Delta {} !< Paragon {}",
        delta.gflops,
        paragon.gflops
    );
    assert!(paragon.gflops < ideal.gflops);
    // The ideal machine approaches peak; the remaining ~12% at n=4000 is
    // the algorithm itself (panel critical path, block-cyclic edge
    // imbalance), not the network.
    assert!(ideal.efficiency > 0.82, "ideal eff {}", ideal.efficiency);
}

/// T4-3a: the funding table regenerates the paper's totals exactly and
/// the derived quantities hold.
#[test]
fn t4_3a_funding_exact() {
    let t = FundingTable::fy1992_93();
    assert_eq!(t.total(FiscalYear::Fy1992).to_string(), "654.8");
    assert_eq!(t.total(FiscalYear::Fy1993).to_string(), "802.9");
    assert!((t.total_growth_pct() - 22.6).abs() < 0.1);
    let top2 = t.share_pct(Agency::Darpa, FiscalYear::Fy1993)
        + t.share_pct(Agency::Nsf, FiscalYear::Fy1993);
    assert!(top2 > 60.0);
}

/// T4-5a: every consortium partner reaches the Delta; transfer-time
/// ratios match the link-class ratios the figure's legend implies.
#[test]
fn t4_5a_consortium_transfer_ratios() {
    let net = topologies::delta_consortium();
    let delta = net.site(topologies::DELTA_SITE).unwrap();
    let sim = FlowSim::new(&net);
    let time_from = |name: &str| {
        let s = net.site(name).unwrap();
        sim.single_flow_time(&TransferSpec::new(s, delta, 100 << 20, SimTime::ZERO))
            .unwrap()
            .as_secs_f64()
    };
    let hippi = time_from("JPL");
    let t1 = time_from("DARPA");
    let k56 = time_from("Purdue");
    // Bandwidth ratios: HIPPI:T1 ≈ 518, T1:56k ≈ 27.6 — transfer times
    // should be within 2x of those (latency perturbs the small ones).
    assert!(t1 / hippi > 250.0, "T1/HIPPI ratio {}", t1 / hippi);
    assert!(
        (20.0..40.0).contains(&(k56 / t1)),
        "56k/T1 ratio {}",
        k56 / t1
    );
}

/// F-T4-5b: the backbone upgrade sequence — T3 ≈ 29x T1, gigabit ≈ 22x
/// T3 (line-rate ratios), and the 64 KB window erases the gigabit gain.
#[test]
fn f_t4_5b_backbone_upgrade_shape() {
    let bytes = 100u64 << 20;
    let coast_to_coast = |class: LinkClass, window: Option<u64>| {
        let net = topologies::nsfnet(class);
        let sim = FlowSim::new(&net);
        let a = net.site("Palo Alto").unwrap();
        let b = net.site("College Park").unwrap();
        let mut spec = TransferSpec::new(a, b, bytes, SimTime::ZERO);
        if let Some(w) = window {
            spec = spec.with_window(w);
        }
        sim.single_flow_time(&spec).unwrap().as_secs_f64()
    };
    let t1 = coast_to_coast(LinkClass::T1, None);
    let t3 = coast_to_coast(LinkClass::T3, None);
    let gig = coast_to_coast(LinkClass::Gigabit, None);
    assert!((25.0..32.0).contains(&(t1 / t3)), "T1/T3 {}", t1 / t3);
    assert!((18.0..26.0).contains(&(t3 / gig)), "T3/gig {}", t3 / gig);

    let gig_w = coast_to_coast(LinkClass::Gigabit, Some(64 << 10));
    let t3_w = coast_to_coast(LinkClass::T3, Some(64 << 10));
    // With the era's 64 KB window both run at w/RTT: nearly identical.
    assert!(
        (gig_w / t3_w - 1.0).abs() < 0.1,
        "windowed gig {gig_w} vs t3 {t3_w}"
    );
}

/// T4-5c: CASA's 800 Mb/s pipe needs megabyte windows to fill.
#[test]
fn t4_5c_casa_window_crossover() {
    let net = topologies::casa_testbed();
    let sim = FlowSim::new(&net);
    let cal = net.site(topologies::DELTA_SITE).unwrap();
    let lanl = net.site("Los Alamos").unwrap();
    let rate = |w: Option<u64>| {
        let mut spec = TransferSpec::new(cal, lanl, 1 << 30, SimTime::ZERO);
        if let Some(w) = w {
            spec = spec.with_window(w);
        }
        let t = sim.single_flow_time(&spec).unwrap().as_secs_f64();
        (1u64 << 30) as f64 / t
    };
    let full = rate(None);
    assert!(rate(Some(64 << 10)) < 0.1 * full, "64 KB must throttle");
    assert!(rate(Some(8 << 20)) > 0.9 * full, "8 MB must fill the pipe");
}

/// GC-1 shape: on the simulated Delta, dense LU sustains a far higher
/// fraction of peak than the communication-bound FFT at the same scale.
#[test]
fn gc_shape_lu_beats_fft_in_efficiency() {
    let machine = Machine::new(presets::delta(8, 8));
    let lu = lu2d::run(&machine, 4_000, 32);
    let fft = hpcc_kernels::sim::fftsim::run(&machine, 1 << 16);
    let fft_eff = fft.gflops / (machine.config().peak_flops() / 1e9);
    assert!(
        lu.efficiency > 3.0 * fft_eff,
        "LU {} vs FFT {}",
        lu.efficiency,
        fft_eff
    );
}

/// RES-1 shape: sweeping checkpoint interval against a fixed MTBF gives
/// a completion-time curve with an *interior* minimum — Young's
/// trade-off between checkpoint overhead and rollback loss.
#[test]
fn checkpoint_interval_sweep_has_interior_minimum() {
    let machine = Machine::new(presets::delta(2, 4));
    let (n, nb) = (1_200, 32);
    let probe = lu2d::run_checkpointed(&machine, n, nb, 4);
    let base = lu2d::run(&machine, n, nb);
    let cost = (probe.result.seconds - base.seconds) / probe.ckpt_times_s.len().max(1) as f64;
    assert!(cost > 0.0, "checkpointing must cost something");
    let mtbf_s = base.seconds * 0.4;
    let opt = lu2d::young_optimal_interval(mtbf_s, cost);
    let intervals: Vec<f64> = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|f| f * opt)
        .collect();
    let sweep = lu2d::resilience_sweep(&machine, n, nb, mtbf_s, &intervals, 1992, 24);
    let best = sweep
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.mean_completion_s.total_cmp(&b.1.mean_completion_s))
        .map(|(i, _)| i)
        .unwrap();
    assert!(
        best != 0 && best != sweep.len() - 1,
        "minimum must be interior, landed at index {best}: {:?}",
        sweep
            .iter()
            .map(|p| p.mean_completion_s)
            .collect::<Vec<_>>()
    );
    // And the curve really bends: endpoints are worse than the valley.
    let valley = sweep[best].mean_completion_s;
    assert!(sweep[0].mean_completion_s > valley);
    assert!(sweep[sweep.len() - 1].mean_completion_s > valley);
}
