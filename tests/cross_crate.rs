//! Cross-crate integration: the simulated machine, the kernels, and the
//! network stack working together — and agreeing with host-side
//! reference implementations.

use delta_mesh::{presets, Comm, Kernel, Machine, Payload};
use des::rng::Rng;
use hpcc_kernels::lu::{lu_factor, lu_solve};
use hpcc_kernels::mat::vecops::norm_inf;
use hpcc_kernels::mat::Mat;
use hpcc_kernels::sim::{lu1d, stencil};

/// The distributed LU on the simulated mesh solves the same systems the
/// host LU does, to LINPACK accuracy, across machine shapes and block
/// sizes.
#[test]
fn simulated_lu_verified_across_shapes() {
    for (rows, cols, n, nb) in [
        (1usize, 2usize, 20usize, 2usize),
        (2, 2, 40, 4),
        (2, 3, 36, 8),
    ] {
        let m = Machine::new(presets::delta(rows, cols));
        let r = lu1d::run(&m, n, nb, 2026);
        assert!(
            r.residual < 16.0,
            "{rows}x{cols} n={n} nb={nb}: residual {}",
            r.residual
        );
    }
}

/// Simulated halo-exchange Jacobi equals the host solver bit-for-bit on
/// every process-grid shape (including shapes that don't divide the grid).
#[test]
fn simulated_stencil_bitwise_matches_host() {
    for (rows, cols) in [(1usize, 2usize), (2, 2), (2, 3), (1, 5)] {
        let m = Machine::new(presets::delta(rows, cols));
        let r = stencil::run_verified(&m, 19, 35);
        assert_eq!(r.max_error, Some(0.0), "{rows}x{cols}");
    }
}

/// A full mini-workflow: factor on the simulated machine, then check the
/// same matrix against the host factorisation's solution.
#[test]
fn host_and_simulated_agree_on_the_answer() {
    // Build the deterministic matrix the simulated nodes generate, on
    // the host, and solve both ways.
    let n = 32;
    let seed = 77u64;
    let entry = |i: usize, j: usize| {
        let mut r = Rng::new(seed ^ ((i as u64) << 32) ^ j as u64);
        r.range_f64(-1.0, 1.0)
    };
    let a = Mat::from_fn(n, n, entry);
    let b: Vec<f64> = (0..n)
        .map(|i| {
            let mut r = Rng::new((seed + 1) ^ ((i as u64) << 32));
            r.range_f64(-1.0, 1.0)
        })
        .collect();

    // Host solution.
    let mut f = a.clone();
    let piv = lu_factor(&mut f, 4).unwrap();
    let x_host = lu_solve(&f, &piv, &b);
    let r_host = {
        let ax = a.matvec(&x_host);
        norm_inf(&ax.iter().zip(&b).map(|(p, q)| p - q).collect::<Vec<_>>())
    };

    // Simulated machine solves the same system (same generator).
    let m = Machine::new(presets::delta(2, 2));
    let r_sim = lu1d::run(&m, n, 4, seed);

    assert!(r_host < 1e-10, "host residual {r_host}");
    assert!(r_sim.residual < 16.0, "sim residual {}", r_sim.residual);
}

/// Collectives compose with compute across a realistic program: parallel
/// dot product of distributed vectors, checked against the host value.
#[test]
fn distributed_dot_product_matches_host() {
    let p = 6;
    let len = 300; // 50 elements per node
    let host: f64 = (0..len).map(|i| (i as f64) * (i as f64 + 1.0)).sum();
    let m = Machine::new(presets::delta(2, 3));
    let (outs, report) = m.run(move |node| async move {
        let comm = Comm::world(&node);
        let chunk = len / p;
        let lo = node.rank() * chunk;
        let local: f64 = (lo..lo + chunk)
            .map(|i| (i as f64) * (i as f64 + 1.0))
            .sum();
        node.compute(Kernel::Daxpy, 2.0 * chunk as f64).await;
        comm.allreduce_sum(&[local]).await[0]
    });
    for v in outs {
        assert_eq!(v, host);
    }
    assert!(report.elapsed.nanos() > 0);
}

/// The same node program produces identical *virtual-time* results on
/// repeated runs, but different machines disagree (they must — that is
/// the point of modelling three generations).
#[test]
fn virtual_time_depends_on_machine_not_host() {
    // Communication-heavy on identical i860 nodes: only the network
    // generation differs between the machines.
    let program = |node: delta_mesh::Node| async move {
        let comm = Comm::world(&node);
        node.compute(Kernel::Dgemm, 1.0e6).await;
        for _ in 0..4 {
            comm.bcast_virtual(0, 1 << 22).await;
        }
        comm.barrier().await;
    };
    let run = |m: &Machine| {
        let (_, r) = m.run(program);
        r.elapsed
    };
    let gamma = Machine::new(presets::ipsc860(4));
    let delta = Machine::new(presets::delta(4, 4));
    let t_gamma = run(&gamma);
    let t_delta = run(&delta);
    assert_eq!(t_gamma, run(&gamma), "deterministic replay");
    assert_eq!(t_delta, run(&delta), "deterministic replay");
    assert!(
        t_gamma > t_delta * 2,
        "iPSC {t_gamma} should be much slower than Delta {t_delta}"
    );
}

/// Payload variants interoperate: real data arrives intact while virtual
/// payloads only cost time.
#[test]
fn payload_kinds_roundtrip() {
    let m = Machine::new(presets::delta(1, 2));
    let (outs, report) = m.run(|node| async move {
        match node.rank() {
            0 => {
                node.send_f64s(1, 1, &[1.5, 2.5]).await;
                node.send(1, 2, Payload::Bytes(bytes::Bytes::from_static(b"hpcc")))
                    .await;
                node.send_virtual(1, 3, 1 << 20).await;
                0.0
            }
            1 => {
                let d = node.recv_f64s(Some(0), Some(1)).await;
                let b = node.recv(Some(0), Some(2)).await;
                let v = node.recv(Some(0), Some(3)).await;
                assert_eq!(b.payload.len_bytes(), 4);
                assert_eq!(v.payload.len_bytes(), 1 << 20);
                d[0] + d[1]
            }
            _ => 0.0,
        }
    });
    assert_eq!(outs[1], 4.0);
    assert_eq!(report.bytes, 16 + 4 + (1 << 20));
}

/// End-to-end consortium scenario: compute on the Delta model + network
/// staging composes into one number, and the network dominates for the
/// T1-attached partner (the cas_cfd example's claim).
#[test]
fn network_dominates_t1_partner_workflow() {
    use des::time::SimTime;
    use nren_netsim::{topologies, FlowSim, TransferSpec};

    let net = topologies::delta_consortium();
    let delta_site = net.site(topologies::DELTA_SITE).unwrap();
    let seat = net.site("NASA Ames").unwrap();
    let sim = FlowSim::new(&net);
    let field = 8 * 1024 * 1024u64;
    let stage = sim
        .single_flow_time(&TransferSpec::new(seat, delta_site, field, SimTime::ZERO))
        .unwrap()
        .as_secs_f64();

    let machine = Machine::new(presets::delta(8, 8));
    let solve = stencil::run_model(&machine, 1024, 50).seconds;
    assert!(
        stage > 5.0 * solve,
        "staging {stage}s vs solve {solve}s — T1 must dominate"
    );
}
