//! Vendored minimal property-testing shim exposing the subset of the
//! `proptest` macro API the workspace tests use: `proptest!` blocks with
//! `arg in range` strategies, `prop_assert!`/`prop_assert_eq!`, and
//! `prop_assume!`. The build environment cannot reach a cargo registry.
//!
//! Each generated `#[test]` runs `ProptestConfig::cases` cases with a
//! deterministic per-test RNG (seeded from the test name), sampling every
//! argument uniformly from its range. No shrinking: on failure the assert
//! message carries the sampled values via the generated context line.

/// Test-case count configuration (only `cases` is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` rejections: the case is discarded
/// and does not count toward `cases`.
#[derive(Debug)]
pub struct TestCaseRejection;

/// Deterministic splitmix64 stream for sampling strategy values.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary label (the macro passes the test name), so
    /// every test gets a distinct but reproducible stream.
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Implemented for the integer `Range` types the
/// workspace tests draw from (`lo..hi`, exclusive upper bound).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseRejection);
        }
    };
}

/// The `proptest! { ... }` block: expands each contained
/// `fn name(arg in strategy, ...) { body }` into a looping `#[test]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_each! { [$cfg] $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_each! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ( [$cfg:expr] ) => {};
    (
        [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `$(#[$meta])*` re-emits the original attributes, including the
        // `#[test]` the caller wrote.
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(100).saturating_add(1000),
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                #[allow(clippy::redundant_closure_call)]
                let case = (|| -> ::core::result::Result<(), $crate::TestCaseRejection> {
                    { $body }
                    Ok(())
                })();
                if case.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_each! { [$cfg] $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn in_range(a in 3u64..17, b in 1usize..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..5).contains(&b));
        }

        /// prop_assume discards without failing.
        #[test]
        fn assume_discards(a in 0u32..4, b in 0u32..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        /// Config-less form uses the default case count.
        #[test]
        fn default_config(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }
}
