//! Vendored minimal subset of the `bytes` crate: a cheaply-clonable,
//! immutable byte buffer. The build environment cannot reach a cargo
//! registry, and the workspace only needs `Bytes` as a message payload
//! (`from_static`, `len`, slice access, `Clone`).

use std::borrow::Cow;

/// A cheaply clonable immutable byte buffer.
///
/// Static data is borrowed (zero-copy, like the real crate); owned data
/// is cloned on `Clone` — acceptable here because the simulator only
/// ever clones payloads when a node program does.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Cow<'static, [u8]>,
}

impl Bytes {
    pub const fn new() -> Bytes {
        Bytes {
            data: Cow::Borrowed(&[]),
        }
    }

    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Cow::Borrowed(bytes),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Cow::Owned(data.to_vec()),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Cow::Owned(v),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_round_trip() {
        let s = Bytes::from_static(b"hpcc");
        assert_eq!(s.len(), 4);
        assert_eq!(&s[..], b"hpcc");
        let o = Bytes::from(vec![1u8, 2, 3]);
        let c = o.clone();
        assert_eq!(c, o);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
