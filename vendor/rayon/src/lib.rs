//! Vendored subset of the `rayon` API backed by `std::thread::scope`.
//!
//! The build environment has no network access and no cargo registry
//! cache, so the real rayon cannot be resolved. This shim implements the
//! slice/iterator combinators the workspace actually uses with genuine
//! fork-join parallelism: items are pre-split into per-thread batches and
//! executed on scoped OS threads.
//!
//! Semantics preserved relative to real rayon:
//! * `for_each` over disjoint `&mut` chunks runs concurrently,
//! * `map(..).collect()` keeps item order,
//! * `reduce` combines per-thread folds with the caller's operator
//!   (callers must supply associative ops, same as rayon),
//! * thread count respects `RAYON_NUM_THREADS` and
//!   `ThreadPoolBuilder::num_threads(..).build().install(..)`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Cached `RAYON_NUM_THREADS` / hardware default (0 = not resolved yet).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        default_threads()
    }
}

/// Mirror of `rayon::ThreadPoolBuilder` (only `num_threads` is honoured).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_threads).max(1),
        })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" is just a thread-count setting; `install` scopes it to the
/// closure (parallel ops inside split into exactly this many batches).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// Split `items` into at most `current_num_threads()` contiguous batches
/// and run `f(global_index, item)` on scoped threads.
fn par_run<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    let nt = current_num_threads().min(n).max(1);
    if nt <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let mut batches: Vec<(usize, Vec<T>)> = Vec::with_capacity(nt);
    let mut items = items;
    // Peel batches off the back so each drain is O(batch).
    let mut end = n;
    for t in (0..nt).rev() {
        let start = t * n / nt;
        batches.push((start, items.drain(start..end).collect()));
        end = start;
    }
    let f = &f;
    std::thread::scope(|s| {
        for (start, batch) in batches {
            s.spawn(move || {
                for (off, item) in batch.into_iter().enumerate() {
                    f(start + off, item);
                }
            });
        }
    });
}

/// Like [`par_run`] but collects `f`'s results in item order.
fn par_map_collect<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let slots: Vec<(&mut Option<R>, T)> = out.iter_mut().zip(items).collect();
        par_run(slots, |_, (slot, item)| *slot = Some(f(item)));
    }
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// A materialised "parallel iterator": a vector of items plus combinators
/// that execute across threads. Covers the lazy-pipeline shapes the
/// workspace uses (`enumerate`, `map`, `for_each`, `reduce`, `collect`).
pub struct ParSeq<T> {
    items: Vec<T>,
}

impl<T: Send> ParSeq<T> {
    pub fn enumerate(self) -> ParSeq<(usize, T)> {
        ParSeq {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_run(self.items, |_, item| f(item));
    }

    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Result of [`ParSeq::map`]: still unexecuted, consumed by
/// `for_each`/`reduce`/`collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let f = self.f;
        par_run(self.items, |_, item| g(f(item)));
    }

    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_collect(self.items, self.f).into_iter().collect()
    }

    /// Fold each thread's batch, then combine batch results in batch
    /// order. `op` must be associative (the rayon contract).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = self.f;
        let partials: Vec<R> = par_map_collect(self.items, f);
        partials.into_iter().fold(identity(), &op)
    }
}

/// Slice methods (`par_iter`, `par_chunks`, ...) — mirror of rayon's
/// `ParallelSlice`/`IntoParallelRefIterator` for `[T]` and `Vec<T>`.
pub trait ParSlice<T: Sync> {
    fn par_iter(&self) -> ParSeq<&T>;
    fn par_chunks(&self, size: usize) -> ParSeq<&[T]>;
}

pub trait ParSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParSeq<&mut T>;
    fn par_chunks_mut(&mut self, size: usize) -> ParSeq<&mut [T]>;
}

impl<T: Sync> ParSlice<T> for [T] {
    fn par_iter(&self) -> ParSeq<&T> {
        ParSeq {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> ParSeq<&[T]> {
        assert!(size > 0);
        ParSeq {
            items: self.chunks(size).collect(),
        }
    }
}

impl<T: Send> ParSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSeq<&mut T> {
        ParSeq {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParSeq<&mut [T]> {
        assert!(size > 0);
        ParSeq {
            items: self.chunks_mut(size).collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{ParSlice, ParSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 7);
        }
    }

    #[test]
    fn par_iter_map_collect_keeps_order() {
        let v: Vec<usize> = (0..997).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..997).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_max() {
        let mut v: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin()).collect();
        let expect = v.iter().cloned().fold(0.0f64, f64::max);
        let got = v
            .par_chunks_mut(13)
            .enumerate()
            .map(|(_, c)| c.iter().cloned().fold(0.0f64, f64::max))
            .reduce(|| 0.0, f64::max);
        assert_eq!(got, expect);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0usize; 100];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
    }

    #[test]
    fn install_scopes_thread_count() {
        assert!(current_num_threads() >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }
}
