//! Vendored minimal bench harness exposing the subset of the `criterion`
//! API the workspace benches use. The build environment has no registry
//! access, so the real criterion cannot be resolved.
//!
//! Timing model: per benchmark, run the measured closure for
//! `warm_up_time`, then keep running until `measurement_time` (at least
//! `sample_size` iterations), and report the mean wall time per
//! iteration. When a throughput is set, an elements/second rate is
//! printed alongside — for the kernel benches that is GFLOP/s·1e-9 when
//! `Throughput::Elements` carries a FLOP count.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration (builder-style, like criterion).
#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, id, None, f);
        self
    }
}

/// Throughput annotation: how much work one iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// `group/function/parameter` benchmark identifier.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.name, self.param)
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label());
        run_one(self.criterion, &label, self.throughput, |bn| f(bn, input));
        self
    }

    pub fn finish(self) {}
}

/// Handed to the measured closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Mean seconds per iteration of the last `iter` call.
    mean_secs: f64,
    iters: u64,
}

impl Bencher<'_> {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.cfg.warm_up {
            black_box(f());
        }
        // Measurement: at least `sample_size` iterations, and keep going
        // until the measurement budget is spent.
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.cfg.sample_size as u64 && start.elapsed() >= self.cfg.measurement {
                break;
            }
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
        self.iters = iters;
    }
}

fn run_one(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        cfg,
        mean_secs: 0.0,
        iters: 0,
    };
    f(&mut b);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  thrpt: {}", fmt_rate(n as f64 / b.mean_secs, "elem/s"))
        }
        Throughput::Bytes(n) => format!("  thrpt: {}", fmt_rate(n as f64 / b.mean_secs, "B/s")),
    });
    println!(
        "bench {label:<48} time: {}  ({} iters){}",
        fmt_time(b.mean_secs),
        b.iters,
        rate.unwrap_or_default()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:9.4} s ")
    } else if secs >= 1e-3 {
        format!("{:9.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:9.4} µs", secs * 1e6)
    } else {
        format!("{:9.2} ns", secs * 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:8.3} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:8.3} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:8.3} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:8.3} {unit}")
    }
}

/// `criterion_group!` — both the `name/config/targets` form and the
/// simple `(name, targets...)` form expand to a runner function.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &2u32, |bn, &x| {
            bn.iter(|| {
                ran += 1;
                x * 2
            })
        });
        g.finish();
        assert!(ran >= 3);
    }
}
